#include "harness/sweep.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/validate.hpp"
#include "harness/executor/executor.hpp"
#include "harness/journal.hpp"
#include "harness/sandbox.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/driver.hpp"
#include "online/registry.hpp"
#include "online/trace.hpp"
#include "util/budget.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace calib::harness {
namespace {

// Must stay disjoint from grid.cpp's kInstanceStreamTag: instance
// streams and policy streams are derived from the same base seed.
constexpr std::uint64_t kPolicyStreamTag = 1ULL << 63;

// Escapes everything that could break JSONL framing — quotes,
// backslashes, and control characters (error messages are arbitrary
// text). The journal's parse_flat_json understands exactly this set.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

// Deterministic double formatting for both writers: enough digits to
// round-trip the values we emit, no locale dependence. Stable under a
// parse/re-format cycle (fmt(stod(fmt(x))) == fmt(x)), which is what
// lets journal-restored rows serialize byte-identically.
std::string fmt(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

std::string extra_column_name(const std::string& extra_metric_name) {
  return extra_metric_name.empty() ? std::string("extra")
                                   : extra_metric_name;
}

// Per-cell outcome accounting. One static bundle: registration takes
// the registry mutex exactly once — touching cell_metrics() before any
// sandbox fork also guarantees no child can inherit that mutex locked.
struct CellMetrics {
  obs::Histogram cell_us = obs::metrics().histogram("sweep.cell_us");
  obs::Counter ok = obs::metrics().counter("sweep.cells_ok");
  obs::Counter error = obs::metrics().counter("sweep.cells_error");
  obs::Counter timeout = obs::metrics().counter("sweep.cells_timeout");
  obs::Counter skipped = obs::metrics().counter("sweep.cells_skipped");
  obs::Counter crashed = obs::metrics().counter("sweep.cells_crashed");
  obs::Counter invalid = obs::metrics().counter("sweep.cells_invalid");
};

const CellMetrics& cell_metrics() {
  static const CellMetrics metrics;
  return metrics;
}

void note_cell(RunStatus status, std::uint64_t elapsed_ns) {
  const CellMetrics& m = cell_metrics();
  m.cell_us.record(elapsed_ns / 1000);
  switch (status) {
    case RunStatus::kOk: m.ok.add(); break;
    case RunStatus::kError: m.error.add(); break;
    case RunStatus::kTimeout: m.timeout.add(); break;
    case RunStatus::kSkipped: break;  // skip stubs never reach run_cell
    case RunStatus::kCrashed: m.crashed.add(); break;
    case RunStatus::kInvalid: m.invalid.add(); break;
  }
}

}  // namespace

// Rebuild a row from one row_to_json line (a journal entry or an
// executor result frame). Coordinates come from the grid (the journal
// fingerprint / the lease cross-check guarantees the entry belongs to
// them); only the solve *outputs* are read from the entry. Returns
// false if the entry is unusable — the cell then simply re-runs.
bool restore_row_from_entry(const std::map<std::string, std::string>& entry,
                            const CellCoords& coords, const SweepGrid& grid,
                            SweepRow& row) {
  try {
    row = SweepRow{};
    row.cell = coords.index;
    row.workload_index = coords.workload;
    row.workload = grid.workloads[coords.workload].label();
    row.solver = grid.solvers[coords.solver];
    row.G = grid.G_values[coords.g];
    row.seed = coords.seed;
    row.jobs = std::stoi(entry.at("jobs"));
    row.status = parse_run_status(entry.at("status"));
    if (const auto it = entry.find("error"); it != entry.end()) {
      row.error = it->second;
    }
    row.result.solver = row.solver;
    row.result.objective =
        static_cast<Cost>(std::stoll(entry.at("objective")));
    row.result.calibrations = std::stoi(entry.at("calibrations"));
    row.result.flow = static_cast<Cost>(std::stoll(entry.at("flow")));
    if (const auto it = entry.find("best_k"); it != entry.end()) {
      row.result.best_k = std::stoi(it->second);
    }
    if (const auto it = entry.find("wall_ms"); it != entry.end()) {
      row.result.wall_ms = std::stod(it->second);
    }
    if (const auto it = entry.find("opt_cost"); it != entry.end()) {
      row.has_opt = true;
      row.opt_cost = static_cast<Cost>(std::stoll(it->second));
      row.opt_k = std::stoi(entry.at("opt_k"));
      row.ratio = std::stod(entry.at("ratio"));
    }
    if (const auto it = entry.find("peak_queue"); it != entry.end()) {
      row.has_trace = true;
      row.peak_queue = std::stoi(it->second);
      row.utilization = std::stod(entry.at("utilization"));
    }
    if (const auto it =
            entry.find(extra_column_name(grid.extra_metric_name));
        it != entry.end()) {
      row.has_extra = true;
      row.extra = std::stod(it->second);
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string row_to_json(const SweepRow& row,
                        const std::string& extra_metric_name,
                        bool include_timing) {
  std::ostringstream os;
  os << "{\"cell\":" << row.cell << ",\"workload\":\""
     << json_escape(row.workload) << "\",\"solver\":\""
     << json_escape(row.solver) << "\",\"G\":" << row.G
     << ",\"seed\":" << row.seed << ",\"jobs\":" << row.jobs
     << ",\"status\":\"" << run_status_name(row.status) << '"';
  if (!row.error.empty()) {
    os << ",\"error\":\"" << json_escape(row.error) << '"';
  }
  os << ",\"objective\":" << row.result.objective
     << ",\"calibrations\":" << row.result.calibrations
     << ",\"flow\":" << row.result.flow;
  if (row.result.best_k >= 0) os << ",\"best_k\":" << row.result.best_k;
  if (row.has_opt) {
    os << ",\"opt_cost\":" << row.opt_cost << ",\"opt_k\":" << row.opt_k
       << ",\"ratio\":" << fmt(row.ratio);
  }
  if (row.has_trace) {
    os << ",\"peak_queue\":" << row.peak_queue
       << ",\"utilization\":" << fmt(row.utilization);
  }
  if (row.has_extra) {
    os << ",\"" << json_escape(extra_column_name(extra_metric_name))
       << "\":" << fmt(row.extra);
  }
  if (include_timing) os << ",\"wall_ms\":" << fmt(row.result.wall_ms);
  os << '}';
  return os.str();
}

SweepEngine::SweepEngine(SweepGrid grid) : grid_(std::move(grid)) {
  if (grid_.workloads.empty()) throw std::runtime_error("sweep: no workloads");
  if (grid_.solvers.empty()) throw std::runtime_error("sweep: no solvers");
  if (grid_.G_values.empty()) throw std::runtime_error("sweep: no G values");
  if (grid_.seeds < 1) throw std::runtime_error("sweep: seeds must be >= 1");
  for (const Cost G : grid_.G_values) {
    if (G < 1) throw std::runtime_error("sweep: G must be >= 1");
  }
  for (const WorkloadSpec& spec : grid_.workloads) spec.validate();
  bool needs_dp = grid_.compare_to_opt;
  for (const std::string& solver : grid_.solvers) {
    if (solver == kOfflineSolver) {
      needs_dp = true;
    } else if (!PolicyRegistry::instance().contains(solver)) {
      throw std::runtime_error("sweep: unknown solver: " + solver);
    }
  }
  if (needs_dp) {
    for (const WorkloadSpec& spec : grid_.workloads) {
      if (spec.machines != 1) {
        throw std::runtime_error(
            "sweep: offline optimum needs P == 1 workloads (got " +
            spec.label() + ")");
      }
    }
  }
}

void SweepEngine::solve_cell(const CellCoords& coords, FlowCurveCache& cache,
                             Budget* budget, bool corrupt,
                             SweepRow& row) const {
  const std::string& solver = grid_.solvers[coords.solver];
  const Cost G = grid_.G_values[coords.g];
  const Instance instance =
      materialize_instance(grid_, coords.workload, coords.seed);
  row.jobs = instance.size();

  // Solver-level span: nests under the cell span, and the DP spans
  // (dp_cache.compute -> dp.flow_curve) nest under it in turn. wall_ms
  // is NOT read off this span — the cell span in run_cell is the single
  // source of truth for the journal.
  const obs::ScopedSpan span(solver.c_str(), "solve");

  if (solver == kOfflineSolver) {
    const CurveOptimum opt =
        optimum_from_curve(*cache.curve(instance, budget), G);
    row.result.solver = solver;
    row.result.objective = opt.best_cost;
    row.result.calibrations = opt.best_k;
    row.result.flow = opt.flow;
    row.result.best_k = opt.best_k;
    if (grid_.compare_to_opt) {
      row.has_opt = true;
      row.opt_cost = opt.best_cost;
      row.opt_k = opt.best_k;
      row.ratio = 1.0;
    }
    return;
  }

  PolicyParams params;
  params.period = grid_.periodic_period;
  Prng root(grid_.base_seed);
  params.seed = root.split(kPolicyStreamTag | coords.index)();
  const auto policy = make_policy(solver, params);

  Trace trace;
  Schedule schedule =
      run_online(instance, G, *policy,
                 grid_.collect_trace ? &trace : nullptr, budget);
  if (corrupt && instance.size() > 0) {
    // The `corrupt` fault kind: tamper with the solved schedule after
    // run_online's own checks passed, so only the independent oracle
    // below stands between a silent wrong answer and the results. Both
    // tampers keep every job placed (weighted_flow aborts otherwise).
    if (instance.size() >= 2) {
      const Placement& p = schedule.placement(1);
      schedule.place(0, p.machine, p.start);  // slot collision
    } else {
      const Placement& p = schedule.placement(0);
      // Far past the last calibration: an uncalibrated step.
      schedule.place(0, p.machine,
                     p.start + static_cast<Time>(instance.T()) * 1000);
    }
  }
  // wall_ms placeholder: run_cell overwrites it from the cell span.
  row.result = summarize_schedule(solver, instance, schedule, G, 0.0);

  // The oracle re-derives feasibility and cost from the Section 2
  // definitions, sharing no code path with the solver or with
  // summarize_schedule's accounting. Any disagreement is a harness or
  // solver bug — surfaced as a ScheduleInvalid, which run_cell turns
  // into an `invalid` row.
  {
    const obs::ScopedSpan oracle_span("validate.oracle", "validate");
    const ValidationReport check = validate_schedule(instance, schedule, G);
    if (!check.feasible()) {
      throw ScheduleInvalid("validation: " + check.violation);
    }
    if (check.objective != row.result.objective ||
        check.flow != row.result.flow ||
        check.calibrations != row.result.calibrations) {
      throw ScheduleInvalid(
          "validation: cost mismatch (oracle objective " +
          std::to_string(check.objective) + " flow " +
          std::to_string(check.flow) + " calibrations " +
          std::to_string(check.calibrations) + " vs reported " +
          std::to_string(row.result.objective) + "/" +
          std::to_string(row.result.flow) + "/" +
          std::to_string(row.result.calibrations) + ")");
    }
  }

  if (grid_.collect_trace) {
    row.has_trace = true;
    row.peak_queue = trace.peak_queue_length();
    row.utilization = trace.utilization(schedule.calendar());
  }
  if (grid_.extra_metric) {
    row.has_extra = true;
    row.extra = grid_.extra_metric(instance, schedule, G);
  }
  if (grid_.compare_to_opt) {
    const CurveOptimum opt =
        optimum_from_curve(*cache.curve(instance, budget), G);
    row.has_opt = true;
    row.opt_cost = opt.best_cost;
    row.opt_k = opt.best_k;
    row.ratio = static_cast<double>(row.result.objective) /
                static_cast<double>(opt.best_cost);
  }
}

SweepRow SweepEngine::run_cell(const CellCoords& coords,
                               FlowCurveCache& cache,
                               const SweepOptions& options) const {
  SweepRow row;
  row.cell = coords.index;
  row.workload_index = coords.workload;
  row.workload = grid_.workloads[coords.workload].label();
  row.solver = grid_.solvers[coords.solver];
  row.G = grid_.G_values[coords.g];
  row.seed = coords.seed;
  row.result.solver = row.solver;

  Budget budget;
  if (options.cell_budget_ms > 0.0) {
    budget.set_deadline_ms(options.cell_budget_ms);
  }
  if (options.cell_step_budget > 0) {
    budget.set_step_limit(options.cell_step_budget);
  }

  // The cell span is the single source of truth for wall time: the
  // journal's wall_ms, the degraded-row wall_ms, and the trace event all
  // read the same clock pair. It spans instance materialization too.
  obs::ScopedSpan span("cell", "sweep");
  span.arg("cell", std::to_string(coords.index));
  span.arg("solver", row.solver);
  span.arg("workload", row.workload);
  span.arg("G", std::to_string(row.G));
  span.arg("seed", std::to_string(coords.seed));

  // On failure: keep the coordinates (and jobs, if the instance was
  // materialized), zero the solve outputs, drop the optional column
  // groups — every degraded row then serializes deterministically.
  const auto degrade = [&](RunStatus status, const char* what) {
    const std::string solver_name = row.result.solver;
    row.status = status;
    row.error = what;
    row.result = SolveResult{};
    row.result.solver = solver_name;
    row.has_opt = false;
    row.has_trace = false;
    row.has_extra = false;
  };

  bool corrupt = false;
  try {
    switch (options.faults.action(coords)) {
      case FaultPlan::Action::kThrow:
        throw std::runtime_error("injected fault (cell " +
                                 std::to_string(coords.index) + ")");
      case FaultPlan::Action::kTimeout:
        throw BudgetExceeded("injected timeout (cell " +
                             std::to_string(coords.index) + ")");
      // The crash kinds only execute inside a sandboxed child — run()
      // refuses them in-process — so they may take the process down.
      case FaultPlan::Action::kSegv:
        std::raise(SIGSEGV);
        break;
      case FaultPlan::Action::kAbort:
        std::abort();
      case FaultPlan::Action::kHang:
        for (;;) {  // only the parent watchdog's SIGKILL ends this
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      case FaultPlan::Action::kCorrupt:
        corrupt = true;
        break;
      case FaultPlan::Action::kNone:
        break;
    }
    solve_cell(coords, cache, budget.unlimited() ? nullptr : &budget, corrupt,
               row);
    row.status = RunStatus::kOk;
  } catch (const ScheduleInvalid& e) {
    degrade(RunStatus::kInvalid, e.what());
  } catch (const BudgetExceeded& e) {
    degrade(RunStatus::kTimeout, e.what());
  } catch (const std::exception& e) {
    degrade(RunStatus::kError, e.what());
  }

  row.result.wall_ms = span.elapsed_ms();
  span.arg("status", run_status_name(row.status));
  if (!budget.unlimited()) {
    span.arg("budget_steps", std::to_string(budget.steps_used()));
  }
  note_cell(row.status, span.elapsed_ns());
  return row;
}

SweepRow SweepEngine::run_cell_sandboxed(const CellCoords& coords,
                                         const SweepOptions& options) const {
  SandboxLimits limits;
  if (options.cell_budget_ms > 0.0) {
    // The in-child cooperative Budget fires at 1x; the watchdog is the
    // backstop for cells that never reach a checkpoint. 1.5x keeps total
    // enforcement within 2x of the requested budget.
    limits.watchdog_ms = options.cell_budget_ms * 1.5;
  }
  limits.memory_bytes = options.sandbox_memory_bytes;
  limits.stack_bytes = options.sandbox_stack_bytes;

  const std::uint64_t start_ns = obs::now_ns();
  const SandboxOutcome outcome = run_in_sandbox(
      [&]() -> std::string {
        // Child-local cache: the child solves exactly one cell, so the
        // cross-cell DP sharing happens only in in-process mode.
        FlowCurveCache cache;
        const SweepRow row = run_cell(coords, cache, options);
        return row_to_json(row, grid_.extra_metric_name,
                           /*include_timing=*/true);
      },
      limits);
  const std::uint64_t elapsed_ns = obs::now_ns() - start_ns;

  SweepRow row;
  row.cell = coords.index;
  row.workload_index = coords.workload;
  row.workload = grid_.workloads[coords.workload].label();
  row.solver = grid_.solvers[coords.solver];
  row.G = grid_.G_values[coords.g];
  row.seed = coords.seed;
  row.result.solver = row.solver;
  const SweepRow stub = row;  // coordinates-only fallback

  // Error strings stay deterministic (no elapsed times, no pids): the
  // same fault plan then yields byte-identical rows on every run.
  switch (outcome.kind) {
    case SandboxOutcome::Kind::kOk:
      try {
        const auto entry = parse_flat_json(outcome.payload);
        if (!restore_row_from_entry(entry, coords, grid_, row)) {
          throw std::runtime_error("row restore failed");
        }
      } catch (const std::exception&) {
        row = stub;
        row.status = RunStatus::kError;
        row.error = "sandbox: unparseable result frame";
      }
      break;
    case SandboxOutcome::Kind::kSignal:
      row.status = RunStatus::kCrashed;
      row.error = "child killed by " + signal_name(outcome.signal);
      if (!outcome.phase.empty()) row.error += " in " + outcome.phase;
      break;
    case SandboxOutcome::Kind::kWatchdog:
      // A budget overrun, same vocabulary as the cooperative path. The
      // phase is omitted on purpose: where the kill lands is a race.
      row.status = RunStatus::kTimeout;
      row.error = "cell budget exceeded (watchdog SIGKILL)";
      break;
    case SandboxOutcome::Kind::kExit:
      row.status = RunStatus::kError;
      row.error =
          "sandbox: child exited with code " + std::to_string(outcome.exit_code);
      break;
    case SandboxOutcome::Kind::kProtocol:
      row.status = RunStatus::kError;
      row.error = outcome.detail.empty() ? std::string("sandbox: protocol error")
                                         : outcome.detail;
      break;
  }

  if (row.status != RunStatus::kOk || row.result.wall_ms == 0.0) {
    row.result.wall_ms =
        static_cast<double>(elapsed_ns) * 1e-6;  // parent-side wall
  }
  // The child's own counters died with it; account for the cell here.
  note_cell(row.status, elapsed_ns);
  return row;
}

SweepRow SweepEngine::execute_cell(std::size_t index, FlowCurveCache& cache,
                                   const SweepOptions& options) const {
  const CellCoords coords = cell_coords(grid_, index);
  return options.sandbox ? run_cell_sandboxed(coords, options)
                         : run_cell(coords, cache, options);
}

SweepReport SweepEngine::run(const SweepOptions& options_in) {
  // Local copy so flag implications stay an engine concern, not a
  // caller protocol: retry_failed only makes sense on top of a resume.
  SweepOptions options = options_in;
  if (options.retry_failed) options.resume = true;

  options.faults.validate();
  if (options.cell_budget_ms < 0.0) {
    throw std::runtime_error("sweep: cell budget must be >= 0");
  }
  if (options.resume && options.journal_path.empty()) {
    throw std::runtime_error(
        options.retry_failed
            ? "sweep: retry_failed requires a journal path"
            : "sweep: resume requires a journal path");
  }
  if (options.faults.has_crash_kinds() && !options.sandbox &&
      options.workers == 0) {
    throw std::runtime_error(
        "sweep: crash fault kinds (segv/abort/hang) require sandbox mode "
        "or the sharded executor (--workers)");
  }
  if (options.faults.has_hangs() && options.cell_budget_ms <= 0.0) {
    throw std::runtime_error(
        "sweep: hang faults require a cell budget (only the watchdog can "
        "end a hung cell)");
  }
  if (options.workers < 0 || options.workers > 256) {
    throw std::runtime_error("sweep: workers must be in [0, 256]");
  }
  if (options.workers > 0) {
    if (options.heartbeat_interval_ms <= 0.0) {
      throw std::runtime_error("sweep: heartbeat interval must be > 0");
    }
    if (options.heartbeat_timeout_ms < options.heartbeat_interval_ms) {
      throw std::runtime_error(
          "sweep: heartbeat timeout must be >= the heartbeat interval");
    }
    if (options.max_cell_attempts < 1) {
      throw std::runtime_error("sweep: max_cell_attempts must be >= 1");
    }
    if (options.retry_backoff_ms < 0.0 ||
        options.retry_backoff_cap_ms < options.retry_backoff_ms) {
      throw std::runtime_error(
          "sweep: retry backoff must be >= 0 and <= its cap");
    }
    options.worker_faults.validate(options.workers);
    if (options.progress_interval_ms <= 0.0) {
      throw std::runtime_error("sweep: progress interval must be > 0");
    }
  } else if (!options.worker_faults.empty()) {
    throw std::runtime_error(
        "sweep: worker faults require the sharded executor (--workers)");
  } else if (options.progress || !options.events_path.empty()) {
    throw std::runtime_error(
        "sweep: --progress and the flight-recorder event log are "
        "coordinator features; they require the sharded executor "
        "(--workers)");
  }
  if (options.sandbox || options.workers > 0) {
    // Register every parent-side metric handle before the first fork;
    // see sandbox_metrics_warmup() for why this must precede dispatch.
    cell_metrics();
    sandbox_metrics_warmup();
    if (options.workers > 0) executor_metrics_warmup();
  }

  const Timer wall;
  obs::ScopedSpan run_span("sweep.run", "sweep");
  FlowCurveCache cache;
  SweepReport report;
  report.extra_metric_name = grid_.extra_metric_name;
  const std::size_t cells = grid_.cells();
  report.rows.resize(cells);

  std::unique_ptr<SweepJournal> journal;
  std::vector<char> done(cells, 0);
  if (!options.journal_path.empty()) {
    journal = std::make_unique<SweepJournal>(
        options.journal_path, grid_fingerprint(grid_), cells,
        options.resume);
    // Later entries win: a retried cell appends a second line, and the
    // next resume must replay the retry's outcome, not the failure.
    for (const auto& entry : journal->entries()) {
      const auto it = entry.find("cell");
      if (it == entry.end()) continue;
      std::size_t index = 0;
      try {
        index = std::stoull(it->second);
      } catch (const std::exception&) {
        continue;
      }
      if (index >= cells) continue;
      SweepRow row;
      if (!restore_row_from_entry(entry, cell_coords(grid_, index), grid_,
                                  row)) {
        continue;
      }
      if (options.retry_failed && row.status != RunStatus::kOk) {
        done[index] = 0;
        continue;
      }
      report.rows[index] = std::move(row);
      done[index] = 1;
    }
    for (const char d : done) report.timing.resumed += (d != 0);
    if (report.timing.resumed > 0) {
      obs::metrics()
          .counter("sweep.cells_resumed")
          .add(static_cast<std::uint64_t>(report.timing.resumed));
    }
  }

  // Engine shared state during the parallel_for (machine-checked:
  // -Wthread-safety on the classes, TSan on this loop):
  //   * report.rows — disjoint per-index writes, published to the
  //     caller by the pool's future.get() barrier; no lock needed.
  //   * done — written before dispatch, read-only inside the loop.
  //   * attempted — the one genuinely shared counter (ticket handout),
  //     hence the atomic.
  //   * cache / journal / obs registries — internally synchronized
  //     (calib::Mutex + GUARDED_BY; see each class).
  std::atomic<std::size_t> attempted{0};
  const auto body = [&](std::size_t i) {
    if (done[i] != 0) return;
    const CellCoords coords = cell_coords(grid_, i);
    // Tickets are handed out per *attempted* cell; once max_cells are
    // taken, the rest become skipped stubs (and are never journaled, so
    // a resume re-runs them). At threads == 1 the skip set is exactly
    // the trailing cells — what the kill-and-resume tests rely on.
    if (attempted.fetch_add(1) >= options.max_cells) {
      SweepRow& row = report.rows[i];
      row.cell = coords.index;
      row.workload_index = coords.workload;
      row.workload = grid_.workloads[coords.workload].label();
      row.solver = grid_.solvers[coords.solver];
      row.G = grid_.G_values[coords.g];
      row.seed = coords.seed;
      row.result.solver = row.solver;
      row.status = RunStatus::kSkipped;
      cell_metrics().skipped.add();
      return;
    }
    report.rows[i] = options.sandbox ? run_cell_sandboxed(coords, options)
                                     : run_cell(coords, cache, options);
    if (journal != nullptr) {
      journal->append(row_to_json(report.rows[i], grid_.extra_metric_name,
                                  /*include_timing=*/true));
    }
  };
  if (options.workers > 0) {
    // Sharded executor: the coordinator thread drives forked workers;
    // no in-process pool is involved.
    report.timing.threads = 1;
    report.timing.workers = static_cast<std::size_t>(options.workers);
    ShardedRunStats stats =
        run_sharded_sweep(*this, options, done, report.rows, journal.get());
    report.worker_metrics = std::move(stats.worker_metrics);
    report.worker_traces = std::move(stats.worker_traces);
    report.timeline = std::move(stats.timeline);
    report.timing.retries = stats.retries;
    report.timing.workers_lost = stats.workers_lost;
    report.interrupted = stats.interrupted;
  } else if (grid_.threads == 0) {
    report.timing.threads = global_pool().size();
    global_pool().parallel_for(cells, body);
  } else {
    ThreadPool pool(grid_.threads);
    report.timing.threads = pool.size();
    pool.parallel_for(cells, body);
  }

  report.timing.wall_seconds = wall.seconds();
  for (const SweepRow& row : report.rows) {
    report.timing.cell_seconds += row.result.wall_ms * 1e-3;
  }
  report.timing.dp_cache_hits = cache.hits();
  report.timing.dp_cache_misses = cache.misses();
  report.timing.dp_seconds = cache.compute_seconds();
  return report;
}

SweepStatusCounts SweepReport::status_counts() const {
  SweepStatusCounts counts;
  for (const SweepRow& row : rows) {
    switch (row.status) {
      case RunStatus::kOk: ++counts.ok; break;
      case RunStatus::kError: ++counts.error; break;
      case RunStatus::kTimeout: ++counts.timeout; break;
      case RunStatus::kSkipped: ++counts.skipped; break;
      case RunStatus::kCrashed: ++counts.crashed; break;
      case RunStatus::kInvalid: ++counts.invalid; break;
    }
  }
  return counts;
}

void SweepReport::write_jsonl(std::ostream& os, bool include_timing) const {
  for (const SweepRow& row : rows) {
    os << row_to_json(row, extra_metric_name, include_timing) << '\n';
  }
}

void SweepReport::write_csv(std::ostream& os, bool include_timing) const {
  CsvWriter writer(os);
  std::vector<std::string> header{
      "cell",     "workload",     "solver", "G",
      "seed",     "jobs",         "objective", "calibrations",
      "flow",     "best_k",       "opt_cost",  "opt_k",
      "ratio",    "peak_queue",   "utilization"};
  header.push_back(extra_metric_name.empty() ? std::string("extra")
                                             : extra_metric_name);
  header.emplace_back("status");
  header.emplace_back("error");
  if (include_timing) header.emplace_back("wall_ms");
  writer.write_row(header);
  for (const SweepRow& row : rows) {
    std::vector<std::string> cells{
        std::to_string(row.cell),
        row.workload,
        row.solver,
        std::to_string(row.G),
        std::to_string(row.seed),
        std::to_string(row.jobs),
        std::to_string(row.result.objective),
        std::to_string(row.result.calibrations),
        std::to_string(row.result.flow),
        row.result.best_k >= 0 ? std::to_string(row.result.best_k)
                               : std::string(),
        row.has_opt ? std::to_string(row.opt_cost) : std::string(),
        row.has_opt ? std::to_string(row.opt_k) : std::string(),
        row.has_opt ? fmt(row.ratio) : std::string(),
        row.has_trace ? std::to_string(row.peak_queue) : std::string(),
        row.has_trace ? fmt(row.utilization) : std::string()};
    cells.push_back(row.has_extra ? fmt(row.extra) : std::string());
    cells.emplace_back(run_status_name(row.status));
    cells.push_back(row.error);
    if (include_timing) cells.push_back(fmt(row.result.wall_ms));
    writer.write_row(cells);
  }
}

std::string SweepReport::timing_summary() const {
  std::ostringstream os;
  os << rows.size() << " cells in " << std::fixed << std::setprecision(3)
     << timing.wall_seconds << "s wall on " << timing.threads
     << " threads (" << timing.cell_seconds << "s of solver time";
  if (timing.dp_cache_hits + timing.dp_cache_misses > 0) {
    os << "; DP cache: " << timing.dp_cache_hits << " hits / "
       << timing.dp_cache_misses << " misses, " << timing.dp_seconds
       << "s in the DP";
  }
  os << ')';
  if (timing.resumed > 0) {
    os << "; resumed " << timing.resumed << " cells from the journal";
  }
  if (timing.workers > 0) {
    os << "; executor: " << timing.workers << " workers, "
       << timing.workers_lost << " lost, " << timing.retries
       << " leases retried";
  }
  const SweepStatusCounts counts = status_counts();
  if (!counts.all_ok()) {
    os << "; degraded: " << counts.error << " error, " << counts.timeout
       << " timeout, " << counts.skipped << " skipped, " << counts.crashed
       << " crashed, " << counts.invalid << " invalid";
  }
  return os.str();
}

}  // namespace calib::harness

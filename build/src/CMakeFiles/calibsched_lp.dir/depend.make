# Empty dependencies file for calibsched_lp.
# This may be replaced when dependencies are built.

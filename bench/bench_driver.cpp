// E17 — driver microbenchmark: decision-round throughput vs queue depth.
//
// The incremental driver's claim is that one decision round — queue
// flows, prefix weights, best-job selection — costs O(log n) against
// maintained state, where the seed (legacy) driver re-sorted and
// re-scanned the waiting set per query. This bench measures exactly
// that: steps/second and per-decision latency while `depth` jobs wait,
// for both backends, at depths up to 10^5. The committed expectation
// (gated by scripts/bench_compare.py --min) is a >= 10x steps/sec
// advantage at depth 10^4.
//
// Metrics sidecar (CALIBSCHED_METRICS=<dir>): gauges
//   driver.steps_per_sec.incremental.d<depth>
//   driver.steps_per_sec.legacy.d<depth>        (when compiled in)
//   driver.speedup_x100.d<depth>
// plus the driver's own online.* counters.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "online/alg4_weighted_multi.hpp"
#include "online/driver.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

const benchutil::MetricsSidecar sidecar("bench_driver");  // NOLINT

/// A policy whose decide() is one full query round (the three queue
/// flows, the aggregate weight, the front job) but which never
/// calibrates or assigns — so the queue depth stays constant and the
/// bench isolates query cost at a fixed n.
class QueryRoundPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle& handle) override {
    if (handle.waiting_empty()) return;
    Cost probe = handle.queue_flow_from(handle.now() + 1, QueueOrder::kFifo);
    probe += handle.queue_flow_from(handle.now() + 1,
                                    QueueOrder::kHeaviestFirst);
    probe += handle.queue_flow_from(handle.now() + 1,
                                    QueueOrder::kLightestFirst);
    probe += handle.waiting_weight();
    probe += handle.front(QueueOrder::kHeaviestFirst);
    benchmark::DoNotOptimize(probe);
  }
  [[nodiscard]] const char* name() const override { return "query-round"; }
};

/// Driver with `depth` jobs waiting at t=0 and no calendar. Weights
/// cycle so the by-weight structures see real ordering work.
std::unique_ptr<OnlineDriver> loaded_driver(OnlinePolicy& policy, int depth,
                                            DriverBackend backend) {
  auto driver = std::make_unique<OnlineDriver>(/*T=*/8, /*machines=*/4,
                                               /*G=*/1 << 30, policy, backend);
  for (int j = 0; j < depth; ++j) {
    driver->add_job(1 + (j * 7919) % 97);
  }
  return driver;
}

void BM_DecisionStep(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? DriverBackend::kIncremental
                                           : DriverBackend::kLegacy;
  const int depth = static_cast<int>(state.range(1));
  QueryRoundPolicy policy;
  const auto driver = loaded_driver(policy, depth, backend);
  for (auto _ : state) {
    driver->step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = depth;
}

// Legacy rows exist only while the equivalence window is open.
#if CALIBSCHED_LEGACY_DRIVER
BENCHMARK(BM_DecisionStep)
    ->ArgsProduct({{0, 1}, {100, 1000, 10000, 100000}})
    ->Unit(benchmark::kMicrosecond);
#else
BENCHMARK(BM_DecisionStep)
    ->ArgsProduct({{0}, {100, 1000, 10000, 100000}})
    ->Unit(benchmark::kMicrosecond);
#endif

/// End-to-end run_online throughput on a bursty multi-machine workload:
/// exercises arrivals, calibrations, assignment, and the event-driven
/// advance together (items = jobs placed).
void BM_RunOnline(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? DriverBackend::kIncremental
                                           : DriverBackend::kLegacy;
  const int jobs = static_cast<int>(state.range(1));
  Prng prng(20260808);
  BurstyConfig config;
  config.burst_probability = 0.08;
  config.burst_length = 8;
  config.steps = std::max(64, jobs / 2);
  const Instance instance =
      bursty_instance(config, /*T=*/6, /*machines=*/3, prng);
  for (auto _ : state) {
    Alg4WeightedMulti policy;
    const Schedule schedule =
        run_online(instance, /*G=*/24, policy, nullptr, nullptr, backend);
    benchmark::DoNotOptimize(schedule.online_cost(instance, 24));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(instance.size()));
  state.counters["jobs"] = static_cast<double>(instance.size());
}

#if CALIBSCHED_LEGACY_DRIVER
BENCHMARK(BM_RunOnline)
    ->ArgsProduct({{0, 1}, {256, 2048}})
    ->Unit(benchmark::kMillisecond);
#else
BENCHMARK(BM_RunOnline)
    ->ArgsProduct({{0}, {256, 2048}})
    ->Unit(benchmark::kMillisecond);
#endif

/// Measures steps/sec for one backend at one depth with a steady-state
/// loaded driver (outside google-benchmark so the number lands in the
/// metrics registry for the bench_compare gate).
double steps_per_second(DriverBackend backend, int depth) {
  QueryRoundPolicy policy;
  const auto driver = loaded_driver(policy, depth, backend);
  // Warm up one step, then time enough rounds for a stable estimate:
  // cheap rounds get many iterations, expensive ones fewer.
  driver->step();
  const int rounds = std::max(8, 2'000'000 / (depth + 1));
  const Timer timer;
  for (int i = 0; i < rounds; ++i) driver->step();
  const double seconds = timer.millis() / 1000.0;
  return static_cast<double>(rounds) / std::max(seconds, 1e-9);
}

/// Computes the committed perf trajectory at exit: steps/sec per depth
/// per backend, and the incremental/legacy speedup (x100, as an integer
/// gauge) that scripts/bench_compare.py --min gates on.
struct SpeedupReporter {
  ~SpeedupReporter() {
    std::cout << "\nE17 - decision-round throughput (steps/sec) by queue "
                 "depth:\n";
    for (const int depth : {1000, 10000, 100000}) {
      const double inc = steps_per_second(DriverBackend::kIncremental, depth);
      const std::string suffix = ".d" + std::to_string(depth);
      obs::metrics()
          .gauge("driver.steps_per_sec.incremental" + suffix)
          .set(static_cast<std::int64_t>(inc));
      std::cout << "  depth " << depth
                << ": incremental " << static_cast<std::int64_t>(inc);
#if CALIBSCHED_LEGACY_DRIVER
      const double leg = steps_per_second(DriverBackend::kLegacy, depth);
      obs::metrics()
          .gauge("driver.steps_per_sec.legacy" + suffix)
          .set(static_cast<std::int64_t>(leg));
      obs::metrics()
          .gauge("driver.speedup_x100" + suffix)
          .set(static_cast<std::int64_t>(inc / leg * 100.0));
      std::cout << ", legacy " << static_cast<std::int64_t>(leg)
                << ", speedup " << inc / leg << "x";
#endif
      std::cout << "\n";
    }
  }
};
const SpeedupReporter reporter;  // NOLINT(cert-err58-cpp)

}  // namespace

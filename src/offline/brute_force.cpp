#include "offline/brute_force.hpp"

#include <algorithm>
#include <set>

#include "core/list_scheduler.hpp"
#include "util/check.hpp"

namespace calib {
namespace {

std::vector<Time> candidate_starts(const Instance& instance,
                                   StartCandidates mode) {
  std::set<Time> starts;
  if (mode == StartCandidates::kLemma42) {
    for (const Job& job : instance.jobs()) {
      starts.insert(job.release + 1 - instance.T());
    }
  } else {
    CALIB_CHECK(!instance.empty());
    const Time lo = instance.min_release() + 1 - instance.T();
    const Time hi = instance.max_release();
    for (Time t = lo; t <= hi; ++t) starts.insert(t);
  }
  return {starts.begin(), starts.end()};
}

/// Evaluate one calibration multiset; keep the best under `objective`.
template <typename Objective>
void consider(const Instance& instance, const std::vector<Time>& chosen,
              const Objective& objective, Cost& best_value,
              OfflineSolution& best) {
  ListResult result = list_schedule(instance, chosen);
  if (!result.feasible()) return;
  const Cost flow = result.schedule.weighted_flow(instance);
  const Cost value = objective(flow, static_cast<int>(chosen.size()));
  if (best_value == kInfeasible || value < best_value) {
    best_value = value;
    best.flow = flow;
    best.schedule = std::move(result.schedule);
  }
}

/// Enumerate multisets of `starts` of size exactly `count`, each start
/// used at most `machines` times (more never helps: the round-robin
/// calendar would stack a third identical interval on a busy machine).
template <typename Objective>
void enumerate(const Instance& instance, const std::vector<Time>& starts,
               int count, std::size_t from, int used_here,
               std::vector<Time>& chosen, const Objective& objective,
               Cost& best_value, OfflineSolution& best) {
  if (count == 0) {
    consider(instance, chosen, objective, best_value, best);
    return;
  }
  for (std::size_t i = from; i < starts.size(); ++i) {
    const int multiplicity = (i == from) ? used_here : 0;
    if (multiplicity >= instance.machines()) continue;
    chosen.push_back(starts[i]);
    enumerate(instance, starts, count - 1, i, multiplicity + 1, chosen,
              objective, best_value, best);
    chosen.pop_back();
  }
}

template <typename Objective>
OfflineSolution search(const Instance& instance, int max_calibrations,
                       StartCandidates candidates,
                       const Objective& objective) {
  OfflineSolution best;
  if (instance.empty()) {
    best.flow = 0;
    best.schedule = Schedule(Calendar(instance.T(), instance.machines()), 0);
    return best;
  }
  const std::vector<Time> starts = candidate_starts(instance, candidates);
  Cost best_value = kInfeasible;
  std::vector<Time> chosen;
  for (int count = 1; count <= max_calibrations; ++count) {
    enumerate(instance, starts, count, 0, 0, chosen, objective, best_value,
              best);
  }
  return best;
}

}  // namespace

OfflineSolution brute_force_budget(const Instance& instance, int budget,
                                   StartCandidates candidates) {
  CALIB_CHECK(budget >= 0);
  return search(instance, budget, candidates,
                [](Cost flow, int) { return flow; });
}

OfflineSolution brute_force_online_objective(const Instance& instance,
                                             Cost G,
                                             StartCandidates candidates) {
  CALIB_CHECK(G >= 1);
  // n calibrations always suffice (one fresh interval per job), and more
  // than n can never be optimal with G >= 1.
  return search(instance, instance.size(), candidates,
                [G](Cost flow, int count) { return flow + G * count; });
}

}  // namespace calib

// Deterministic fault injection for the sweep engine.
//
// A FaultPlan decides, per cell, whether to force a throw or a timeout —
// as a pure function of (plan seed, cell coordinates), never of wall
// clock or thread scheduling. That determinism is the point: the same
// plan injects the same faults on every run at every thread count, so
// tests can drive every degradation path (error rows, timeout rows,
// journal resume around failed cells) and byte-compare the results.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/grid.hpp"

namespace calib::harness {

struct FaultPlan {
  enum class Action { kNone, kThrow, kTimeout };

  /// Explicit cell indices (grid enumeration order) to fail. Checked
  /// before the probabilistic draw; a cell in both lists throws.
  std::vector<std::size_t> throw_cells;
  std::vector<std::size_t> timeout_cells;

  /// Independent per-cell probabilities, drawn from a PRNG stream
  /// derived from (seed, cell index). Both zero = no random faults.
  double throw_probability = 0.0;
  double timeout_probability = 0.0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool empty() const;

  /// The action for one cell. Pure; callable concurrently.
  [[nodiscard]] Action action(const CellCoords& coords) const;

  /// Throws std::runtime_error if probabilities are outside [0, 1] or
  /// sum above 1.
  void validate() const;
};

}  // namespace calib::harness

file(REMOVE_RECURSE
  "CMakeFiles/test_dual_check.dir/test_dual_check.cpp.o"
  "CMakeFiles/test_dual_check.dir/test_dual_check.cpp.o.d"
  "test_dual_check"
  "test_dual_check.pdb"
  "test_dual_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

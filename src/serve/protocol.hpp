// Wire protocol for the `calibsched serve` daemon.
//
// The daemon speaks the project's length-prefixed framing
// (util/framing.hpp — magic, type, length, payload) on a Unix-domain
// or TCP stream, with its own frame-type window 6..11 so an executor
// or sandbox frame accidentally pointed at the daemon socket is a
// poisoning protocol breach, not a confusion:
//
//   kHello       client -> daemon   open (or resume) a tenant session
//                daemon -> client   acknowledgment (echoes the session)
//   kSubmitJob   client -> daemon   one job release
//   kDecision    daemon -> client   the driver's observable decisions
//                                   caused by that release
//   kTenantStats daemon -> client   session summary (final on drain)
//   kError       daemon -> client   structured rejection; RETRY_AFTER
//                                   sheds carry retry_after_ms
//   kGoodbye     either direction   orderly close (client: please
//                                   drain; daemon: session is done)
//
// Payloads are flat JSON (harness::parse_flat_json), matching every
// other wire format in the project. Decision events use a compact
// semicolon-joined encoding (see encode_events) so a decision is one
// short line — these streams are byte-compared across runs in tests,
// which is why every encoder here is deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "online/trace.hpp"
#include "util/framing.hpp"

namespace calib::serve {

enum class ServeFrame : std::uint32_t {
  kHello = 6,
  kSubmitJob = 7,
  kDecision = 8,
  kTenantStats = 9,
  kError = 10,
  kGoodbye = 11,
};

/// The daemon-side FrameReader window: [kHello, kGoodbye].
[[nodiscard]] inline FrameReader make_serve_reader() {
  return FrameReader(static_cast<std::uint32_t>(ServeFrame::kHello),
                     static_cast<std::uint32_t>(ServeFrame::kGoodbye));
}

/// Encode one serve frame ready for a single write.
[[nodiscard]] std::string encode_serve_frame(ServeFrame type,
                                             std::string_view payload);

/// Session parameters a client opens with. `resume` asks the daemon to
/// attach to a journal-restored session of the same tenant instead of
/// rejecting the duplicate name.
struct HelloRequest {
  std::string tenant;
  std::string policy = "alg2";
  Time T = 4096;
  int machines = 1;
  Cost G = 5;
  std::uint64_t seed = 1;
  Time period = 5;
  bool resume = false;
};

struct SubmitJob {
  Time release = 0;
  Weight weight = 1;
};

/// The daemon's reply to one accepted SubmitJob: every trace event the
/// driver emitted while advancing to the job's release and revealing it
/// (possibly none — policies are allowed to wait), plus the running
/// objective. `seq` counts accepted jobs per session from 0.
struct Decision {
  std::uint64_t seq = 0;
  Time now = 0;
  Cost cost = 0;
  std::string events;  ///< encode_events of the new trace suffix
};

struct TenantStats {
  std::string tenant;
  std::string state;  ///< "active" | "degraded" | "drained"
  std::uint64_t jobs = 0;
  std::uint64_t placed = 0;
  std::uint64_t calibrations = 0;
  Cost cost = 0;
  std::uint64_t steps_used = 0;
  std::string violation;  ///< validation verdict at drain ("" = feasible)
};

/// Machine-readable rejection. Codes: RETRY_AFTER (admission shed —
/// honor retry_after_ms), BAD_REQUEST, BUDGET_EXCEEDED, DEGRADED,
/// PROTOCOL, SHUTTING_DOWN, UNKNOWN_TENANT.
struct ErrorInfo {
  std::string code;
  std::string detail;
  std::int64_t retry_after_ms = 0;
};

[[nodiscard]] std::string encode_hello(const HelloRequest& hello);
[[nodiscard]] HelloRequest decode_hello(const std::string& payload);

[[nodiscard]] std::string encode_submit(const SubmitJob& submit);
[[nodiscard]] SubmitJob decode_submit(const std::string& payload);

[[nodiscard]] std::string encode_decision(const Decision& decision);
[[nodiscard]] Decision decode_decision(const std::string& payload);

[[nodiscard]] std::string encode_stats(const TenantStats& stats);
[[nodiscard]] TenantStats decode_stats(const std::string& payload);

[[nodiscard]] std::string encode_error(const ErrorInfo& error);
[[nodiscard]] ErrorInfo decode_error(const std::string& payload);

/// Compact deterministic encoding of a trace-event span:
///   arrival      A:<at>:<job>:<weight>
///   calibration  C:<at>:<machine>
///   placement    P:<at>:<job>:<machine>:<start>
/// joined with ';'. Empty span encodes to "".
[[nodiscard]] std::string encode_events(const std::vector<TraceEvent>& events,
                                        std::size_t begin, std::size_t end);

}  // namespace calib::serve

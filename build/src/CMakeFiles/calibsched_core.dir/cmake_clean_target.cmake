file(REMOVE_RECURSE
  "libcalibsched_core.a"
)

// E1 — Lemma 3.1: no deterministic online algorithm beats
// (2 - o(1))-competitive.
//
// Runs the adaptive adversary against each policy over a (G, T) sweep
// and prints, per cell, the realized ratio alongside the lemma's two
// closed-form branch ratios 2 - 4/(G+3) and 2 - G/(T+G). Expected
// shape: every policy's ratio against the adversary approaches 2 from
// below as G grows with T >> G, and the exact offline optimum matches
// the lemma's hand-constructed schedule on these instances.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "offline/brute_force.hpp"
#include "offline/budget_search.hpp"
#include "online/adversary.hpp"
#include "online/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace calib;

// Registry names of the policies the adversary is run against.
constexpr const char* kPolicies[] = {"alg1", "eager", "ski"};

std::unique_ptr<OnlinePolicy> adversary_policy(int id) {
  return make_policy(kPolicies[id]);
}

/// Exact offline optimum of an adversary instance. The DP is exact but
/// cubic, so beyond a few hundred jobs we use the lemma's closed form —
/// which equals the DP value on these instances (asserted for small T in
/// tests/test_adversary.cpp).
Cost exact_opt(const AdversaryOutcome& outcome, Cost G) {
  if (outcome.instance.size() <= 256) {
    return offline_online_optimum(outcome.instance, G).best_cost;
  }
  return outcome.lemma_opt_cost;
}

void BM_AdversaryRatio(benchmark::State& state) {
  const Cost G = state.range(0);
  const Time T = state.range(1);
  const int policy_id = static_cast<int>(state.range(2));
  double ratio = 0.0;
  for (auto _ : state) {
    auto policy = adversary_policy(policy_id);
    const AdversaryOutcome outcome =
        run_lower_bound_adversary(*policy, G, T);
    ratio = static_cast<double>(outcome.algorithm_cost) /
            static_cast<double>(exact_opt(outcome, G));
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["ratio"] = ratio;
  state.counters["lemma_branch1"] =
      2.0 - 4.0 / (static_cast<double>(G) + 3.0);
  state.counters["lemma_branch2"] =
      2.0 - static_cast<double>(G) / static_cast<double>(T + G);
}

BENCHMARK(BM_AdversaryRatio)
    ->ArgsProduct({{4, 16, 64, 256}, {8, 64, 512}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

/// Prints the headline table once at exit: per (G, T), the adversary's
/// realized ratio for Algorithm 1 and the lemma's bound.
struct TablePrinter {
  ~TablePrinter() {
    Table table({"G", "T", "policy", "branch", "alg_cost", "opt_cost",
                 "ratio", "lemma_ratio"});
    for (const Cost G : {4, 16, 64, 256, 1024}) {
      for (const Time T : {8, 64, 512, 4096}) {
        for (int policy_id = 0; policy_id < 3; ++policy_id) {
          auto policy = adversary_policy(policy_id);
          const AdversaryOutcome outcome =
              run_lower_bound_adversary(*policy, G, T);
          const Cost opt = exact_opt(outcome, G);
          const double lemma =
              outcome.calibrated_at_zero
                  ? 2.0 - 4.0 / (static_cast<double>(G) + 3.0)
                  : 2.0 - static_cast<double>(G) /
                              static_cast<double>(T + G);
          table.row()
              .add(G)
              .add(T)
              .add(policy->name())
              .add(outcome.calibrated_at_zero ? "calibrated@0" : "waited")
              .add(outcome.algorithm_cost)
              .add(opt)
              .add(static_cast<double>(outcome.algorithm_cost) /
                       static_cast<double>(opt),
                   3)
              .add(lemma, 3);
        }
      }
    }
    std::cout << "\nE1 / Lemma 3.1 - adversarial lower bound (ratio -> 2):\n";
    table.print(std::cout);
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

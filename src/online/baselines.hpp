// Baseline online policies the paper's algorithms are measured against.
//
// None of these is constant-competitive — each fails on one side of the
// flow/calibration tradeoff — which is exactly what the benchmark tables
// show (E2/E3/E8):
//   * Eager: calibrates the moment anything waits; flow-optimal,
//     calibration cost unbounded relative to OPT.
//   * SkiRental: pure delay-until-flow-G (the classic rent/buy rule
//     Algorithm 1 refines); misses the G/T count trigger, so long trickles
//     of jobs overpay flow.
//   * Periodic: fixed calibration cadence, oblivious to the queue.
#pragma once

#include "online/policy.hpp"

namespace calib {

class EagerPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kHeaviestFirst;
  }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override { return "eager"; }
};

class SkiRentalPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kHeaviestFirst;
  }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override { return "ski-rental"; }
};

class PeriodicPolicy final : public OnlinePolicy {
 public:
  explicit PeriodicPolicy(Time period);
  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kHeaviestFirst;
  }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override { return "periodic"; }

 private:
  Time period_;
};

}  // namespace calib

// E8 — the paper's motivating tradeoff (Sections 1 and 4): flow versus
// calibrations.
//
// Two series:
//   (a) the frontier k -> F(k) (optimal flow at each calibration
//       budget) for a representative day of jobs — the curve every
//       downstream user reads off to price calibrations;
//   (b) the G-sweep of the offline optimum's split between calibration
//       spend and flow, plus the footnote-5 binary search vs the
//       exhaustive scan.
// Expected shape: F(k) is non-increasing with steeply diminishing
// returns; as G grows the optimum shifts from many calibrations to few;
// binary search agrees with exhaustive everywhere it is unimodal.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "offline/dp.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

Instance representative_day(std::uint64_t seed) {
  Prng prng(seed);
  PoissonConfig config;
  config.rate = 0.35;
  config.steps = 80;
  config.weights = WeightModel::kUniform;
  config.w_max = 6;
  return poisson_instance(config, 6, 1, prng);
}

void BM_FlowCurve(benchmark::State& state) {
  const Instance day = representative_day(11);
  for (auto _ : state) {
    OfflineDp dp(day);
    benchmark::DoNotOptimize(dp.flow_curve(day.size()));
  }
}

BENCHMARK(BM_FlowCurve)->Unit(benchmark::kMillisecond);

void BM_BudgetSearchExhaustiveVsBinary(benchmark::State& state) {
  const Instance day = representative_day(12);
  const bool binary = state.range(0) != 0;
  for (auto _ : state) {
    if (binary) {
      benchmark::DoNotOptimize(offline_online_optimum_binary(day, 15));
    } else {
      benchmark::DoNotOptimize(offline_online_optimum(day, 15));
    }
  }
  state.SetLabel(binary ? "binary (footnote 5)" : "exhaustive");
}

BENCHMARK(BM_BudgetSearchExhaustiveVsBinary)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    const Instance day = representative_day(11);
    OfflineDp dp(day);
    const auto curve = dp.flow_curve(day.size());

    std::cout << "\nE8a - the flow-vs-calibrations frontier F(k) "
                 "(n=" << day.size() << ", T=" << day.T() << "):\n";
    Table frontier({"k", "F(k)", "marginal saving"});
    Cost previous = kInfeasible;
    for (int k = 1; k <= day.size(); ++k) {
      const Cost flow = curve[static_cast<std::size_t>(k)];
      if (flow == kInfeasible) continue;
      frontier.row()
          .add(k)
          .add(flow)
          .add(previous == kInfeasible ? std::string("-")
                                       : std::to_string(previous - flow));
      previous = flow;
      if (flow == curve.back()) break;  // flat tail: stop printing
    }
    frontier.print(std::cout);

    std::cout << "\nE8b - offline optimum's cost split as G grows, and "
                 "footnote-5 binary search agreement:\n";
    Table split({"G", "best k", "calibration spend", "flow", "total",
                 "binary agrees"});
    for (const Cost G : {1, 3, 7, 15, 30, 60, 120, 250}) {
      const BudgetSearchResult exhaustive = offline_online_optimum(day, G);
      const BudgetSearchResult binary =
          offline_online_optimum_binary(day, G);
      split.row()
          .add(static_cast<std::int64_t>(G))
          .add(exhaustive.best_k)
          .add(G * exhaustive.best_k)
          .add(exhaustive.best_cost - G * exhaustive.best_k)
          .add(exhaustive.best_cost)
          .add(binary.best_cost == exhaustive.best_cost ? "yes" : "NO");
    }
    split.print(std::cout);
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

// Process-level crash containment for sweep cells.
//
// run_in_sandbox() forks a child, applies rlimit memory/stack caps, runs
// a job in it, and returns the job's string result to the parent over a
// pipe in a single length-prefixed frame. The parent watches the pipe
// with a deadline: when the watchdog budget elapses it delivers SIGKILL,
// which is what turns the sweep's --cell-budget-ms from a cooperative
// hint (a hung DP that never reaches a budget checkpoint ignores it)
// into a hard guarantee. A child that dies on a signal — segfault,
// std::abort, stack overflow, OOM kill — is reported with the signal
// name plus the deepest obs-span phase it was executing, read off a
// small MAP_SHARED breadcrumb page (obs::PhaseBreadcrumb) that the
// child's ScopedSpans keep current.
//
// IPC frame format (documented in DESIGN.md):
//   magic   u32 LE  0x43414C42 ("BLAC" on disk, "CALB" in register order)
//   length  u32 LE  payload byte count (capped at kMaxFrameBytes)
//   payload bytes   the job's returned string, verbatim
// The frame is written with blocking write(2) calls just before
// _exit(0); a short or absent frame therefore always means the child
// died (or broke protocol), never a timing race.
//
// Linux/POSIX only — exactly the platforms the sweep harness targets.
// Forking from a multi-threaded parent is safe here because the child
// runs ordinary (glibc-atfork-protected) code and the fork window is
// serialized: a process-wide mutex spans pipe()+fork(), so no other
// cell's child can inherit this pipe's write end and hold EOF open.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/framing.hpp"

namespace calib::harness {

struct SandboxLimits {
  /// Parent-side watchdog: SIGKILL the child this many ms after the
  /// fork (0 = no watchdog; a hung child then hangs its worker slot,
  /// same as an in-process hang).
  double watchdog_ms = 0.0;
  /// RLIMIT_AS cap for the child, bytes (0 = inherit). Overruns surface
  /// as std::bad_alloc (an error row) or a fatal signal (a crashed row).
  std::uint64_t memory_bytes = 0;
  /// RLIMIT_STACK cap for the child, bytes (0 = inherit). Overruns are
  /// a SIGSEGV — contained like any other crash.
  std::uint64_t stack_bytes = 0;
};

struct SandboxOutcome {
  enum class Kind {
    kOk,        ///< full frame received and child exited 0
    kSignal,    ///< child died on a signal it raised itself
    kWatchdog,  ///< parent delivered SIGKILL at the watchdog deadline
    kExit,      ///< child exited nonzero (no usable frame)
    kProtocol,  ///< fork/pipe failure or malformed frame; see detail
  };

  Kind kind = Kind::kProtocol;
  int signal = 0;       ///< terminating signal when kind == kSignal
  int exit_code = 0;    ///< exit status when kind == kExit
  std::string payload;  ///< the job's returned string when kind == kOk
  std::string phase;    ///< child's last obs-span name ("" if none)
  std::string detail;   ///< human-readable description for kProtocol
};

/// "SIGSEGV", "SIGABRT", ...; falls back to "signal N" for numbers this
/// table doesn't name.
[[nodiscard]] std::string signal_name(int sig);

/// Force registration of the sandbox's metric handles now. The sweep
/// engine calls this before dispatching sandboxed cells so no fork can
/// land while a worker thread holds the metrics-registry mutex (the
/// child would inherit it locked and deadlock on its first counter).
void sandbox_metrics_warmup();

/// Run `job` in a forked child under `limits` and return its outcome.
/// Never throws: every failure mode (fork failure, crash, kill, torn
/// frame) is a structured SandboxOutcome. The job itself should not
/// throw — an escaping exception makes the child exit nonzero (kExit).
[[nodiscard]] SandboxOutcome run_in_sandbox(
    const std::function<std::string()>& job, const SandboxLimits& limits);

}  // namespace calib::harness

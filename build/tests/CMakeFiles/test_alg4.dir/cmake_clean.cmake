file(REMOVE_RECURSE
  "CMakeFiles/test_alg4.dir/test_alg4.cpp.o"
  "CMakeFiles/test_alg4.dir/test_alg4.cpp.o.d"
  "test_alg4"
  "test_alg4.pdb"
  "test_alg4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Quickstart: build an instance, run the paper's online algorithm and
// the exact offline optimum, and compare.
//
//   $ ./quickstart
//
// Walks through the core API: Instance -> online policy -> Schedule,
// plus the Section 4 DP via offline_online_optimum().
#include <iostream>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "offline/budget_search.hpp"
#include "offline/dp.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/driver.hpp"

int main() {
  using namespace calib;

  // Ten unit-weight jobs trickling in; calibrations last T = 5 steps and
  // cost G = 12 each in the online objective.
  Instance instance({Job{0, 1}, Job{1, 1}, Job{2, 1}, Job{7, 1}, Job{8, 1},
                     Job{14, 1}, Job{15, 1}, Job{16, 1}, Job{17, 1},
                     Job{18, 1}},
                    /*calibration_length=*/5, /*machines=*/1);
  const Cost G = 12;

  std::cout << "Instance: " << instance.to_string() << "\n\n";

  // --- Online: Algorithm 1 (3-competitive, Theorem 3.3) ---
  Alg1Unweighted policy;
  const Schedule online = run_online(instance, G, policy);
  std::cout << "Algorithm 1 schedule (" << online.calendar().count()
            << " calibrations, flow " << online.weighted_flow(instance)
            << ", objective " << online.online_cost(instance, G) << "):\n"
            << online.render(instance) << '\n';

  // --- Offline: Section 4 DP, searched over the calibration budget ---
  const BudgetSearchResult opt = offline_online_optimum(instance, G);
  OfflineDp dp(instance);
  const auto witness = dp.solve(opt.best_k);
  std::cout << "Offline optimum uses " << opt.best_k
            << " calibrations, objective " << opt.best_cost << ":\n"
            << witness->render(instance) << '\n';

  std::cout << "Competitive ratio on this instance: "
            << static_cast<double>(online.online_cost(instance, G)) /
                   static_cast<double>(opt.best_cost)
            << " (Theorem 3.3 guarantees <= 3)\n";
  return 0;
}

// Wire protocol for the sharded sweep executor (executor.hpp).
//
// The coordinator and its worker processes speak length-prefixed frames
// over plain pipes — the same framing the cell sandbox uses for its
// one-shot result pipe (harness/sandbox.hpp), extended with a type word
// so one stream can carry leases, results, heartbeats, and shutdowns:
//
//   magic   u32 LE  kFrameMagic (util/framing.hpp — the single point of truth)
//   type    u32 LE  FrameType
//   length  u32 LE  payload byte count (capped at kMaxFrameBytes)
//   payload bytes   type-specific, see FrameType
//
// A malformed header (wrong magic, unknown type, oversized length)
// poisons the stream permanently: the coordinator treats it as a worker
// gone haywire, SIGKILLs the process, and re-queues its lease. There is
// deliberately no resynchronization — inside a corrupted byte stream,
// "the next frame boundary" is not a well-defined place.
//
// The framing itself (header layout, EINTR-safe write loop, the
// incremental poisoning decoder) lives in util/framing.hpp; this header
// narrows the shared calib::FrameReader to the executor's FrameType
// range and adds the executor's payload codecs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/framing.hpp"

namespace calib::harness {

enum class FrameType : std::uint32_t {
  /// Coordinator -> worker: run one cell. Payload: decimal cell index.
  kLease = 1,
  /// Worker -> coordinator: a finished cell. Payload: the row's JSONL
  /// serialization (row_to_json with timing), which carries its own
  /// "cell" field for cross-checking against the outstanding lease.
  kResult = 2,
  /// Worker -> coordinator: liveness + metrics. Payload: the worker's
  /// cumulative obs snapshot (encode_metrics_payload). Sent every
  /// heartbeat interval and once more right before a clean exit.
  kHeartbeat = 3,
  /// Coordinator -> worker: drain and exit cleanly. Empty payload.
  kShutdown = 4,
  /// Worker -> coordinator: a drained slice of the worker's bounded
  /// TraceCollector buffer (encode_trace_payload). Sent alongside
  /// heartbeats and once more before a clean exit, but only while span
  /// recording is enabled — tracing off means no kTrace frames at all.
  /// The first chunk doubles as the clock handshake: its `now` field is
  /// what the coordinator uses to estimate this worker's clock offset.
  kTrace = 5,
};

struct Frame {
  FrameType type = FrameType::kLease;
  std::string payload;
};

/// Serialize one frame (header + payload) into a byte string ready for
/// a single write. Throws std::runtime_error on an oversized payload.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);

/// Write an encoded frame to `fd` with blocking write(2), retrying on
/// EINTR. Returns false on any other error (EPIPE after the peer died);
/// the caller decides whether that is fatal.
[[nodiscard]] bool write_frame(int fd, FrameType type,
                               std::string_view payload);

/// Incremental frame decoder for one executor stream: the shared
/// calib::FrameReader narrowed to the kLease..kTrace type window. Feed
/// raw bytes as they arrive; pop complete frames with next(). Once a
/// malformed header is seen the reader is poisoned: corrupted() stays
/// true, next() never yields again, and error() names the reason.
class FrameReader {
 public:
  FrameReader()
      : raw_(static_cast<std::uint32_t>(FrameType::kLease),
             static_cast<std::uint32_t>(FrameType::kTrace)) {}

  void feed(const char* data, std::size_t n) { raw_.feed(data, n); }
  [[nodiscard]] bool next(Frame& frame);
  [[nodiscard]] bool corrupted() const { return raw_.corrupted(); }
  [[nodiscard]] const std::string& error() const { return raw_.error(); }

 private:
  calib::FrameReader raw_;
};

/// Serialize an obs snapshot for a heartbeat payload. Flat JSON with a
/// type prefix on every key ("c:" counter, "g:" gauge, "h:" histogram
/// stat) so decode can rebuild the three sections unambiguously.
/// Histograms additionally ship their raw log2 buckets (a sparse
/// "h:<name>.buckets" string of index=count pairs): the coordinator
/// merges *distributions*, not derived percentile estimates, which is
/// what makes Snapshot::merge exact across workers.
[[nodiscard]] std::string encode_metrics_payload(
    const obs::Snapshot& snapshot);

/// Inverse of encode_metrics_payload. Throws std::runtime_error on
/// payloads that do not parse (the coordinator then drops the sample).
[[nodiscard]] obs::Snapshot decode_metrics_payload(const std::string& text);

/// Serialize a drained trace chunk for a kTrace frame: one flat JSON
/// object per line — a header carrying (worker, pid, now, dropped),
/// then the thread-name table, then one line per event. The encoding is
/// truncation-safe: once the payload would exceed `max_bytes` (0 = the
/// frame cap, kMaxFrameBytes) the remaining events are counted into the
/// header's dropped field instead of emitted, so a pathological buffer
/// can never produce an unsendable frame.
[[nodiscard]] std::string encode_trace_payload(int worker, std::int64_t pid,
                                               const obs::TraceChunk& chunk,
                                               std::size_t max_bytes = 0);

/// Inverse of encode_trace_payload. Timestamps come back un-rebased
/// (sender clock); the caller applies its per-worker offset. Throws
/// std::runtime_error on any malformed line — a corrupt trace payload
/// is a protocol breach like any other, and the coordinator kills the
/// worker that sent it.
[[nodiscard]] obs::ProcessTrace decode_trace_payload(const std::string& text);

}  // namespace calib::harness

# Empty dependencies file for test_calib_lp.
# This may be replaced when dependencies are built.

// E3 — Theorem 3.8: Algorithm 2 is 12-competitive (single machine,
// weighted jobs).
//
// Sweeps weight models (uniform, Zipf heavy-tail, bimodal urgent-lot)
// and (G, T), measuring competitive ratio vs exact OPT, plus the
// Lemma 3.5 per-interval excess-flow statistic (must stay below 2G).
// Expected shape: max ratio well below 12 (typically under 2.5); the
// Lemma 3.5 excess approaches but never reaches 2G.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "online/alg2_weighted.hpp"
#include "online/baselines.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

Instance make_workload(WeightModel weights, Time T, Prng& prng) {
  PoissonConfig config;
  config.rate = 0.3;
  config.steps = 100;
  config.weights = weights;
  config.w_max = 9;
  return poisson_instance(config, T, 1, prng);
}

/// Max over intervals of sum_j w_j (t_j - r_j), normalized by 2G
/// (Lemma 3.5 says < 1).
double lemma35_utilization(const Instance& instance,
                           const Schedule& schedule, Cost G) {
  Cost worst = 0;
  for (const Time start : schedule.calendar().starts(0)) {
    Cost excess = 0;
    for (const JobId j : schedule.jobs_in_interval(0, start)) {
      excess += instance.job(j).weight *
                (schedule.placement(j).start - instance.job(j).release);
    }
    worst = std::max(worst, excess);
  }
  return static_cast<double>(worst) / static_cast<double>(2 * G);
}

void BM_Alg2Ratio(benchmark::State& state) {
  const Cost G = state.range(0);
  const Time T = state.range(1);
  const auto weights = static_cast<WeightModel>(state.range(2));
  Prng prng(static_cast<std::uint64_t>(G * 131 + T));
  double worst = 0.0;
  for (auto _ : state) {
    const Instance instance = make_workload(weights, T, prng);
    Alg2Weighted policy;
    worst = std::max(worst, benchutil::ratio_vs_opt(instance, G, policy));
  }
  state.counters["worst_ratio"] = worst;
  state.counters["bound"] = 12.0;
}

BENCHMARK(BM_Alg2Ratio)
    ->ArgsProduct({{6, 20, 60},
                   {3, 8},
                   {static_cast<int>(WeightModel::kUniform),
                    static_cast<int>(WeightModel::kZipf),
                    static_cast<int>(WeightModel::kBimodal)}})
    ->Unit(benchmark::kMillisecond);

const char* weight_name(WeightModel model) {
  switch (model) {
    case WeightModel::kUnit:
      return "unit";
    case WeightModel::kUniform:
      return "uniform";
    case WeightModel::kZipf:
      return "zipf";
    case WeightModel::kBimodal:
      return "bimodal";
  }
  return "?";
}

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE3 / Theorem 3.8 - Algorithm 2 competitive ratio vs "
                 "exact OPT (50 seeds per cell, bound = 12) and the "
                 "Lemma 3.5 interval-excess utilization (< 1 required):\n";
    Table table({"weights", "G", "T", "ratio mean", "ratio p95",
                 "ratio max", "lemma3.5 max util"});
    for (const WeightModel weights :
         {WeightModel::kUniform, WeightModel::kZipf,
          WeightModel::kBimodal}) {
      for (const Cost G : {6, 20, 60}) {
        for (const Time T : {3, 8}) {
          Summary ratios;
          Summary utils;
          std::mutex mutex;
          global_pool().parallel_for(50, [&](std::size_t seed) {
            Prng prng(seed * 40503u +
                      static_cast<std::uint64_t>(G * 17 + T * 3 +
                                                 static_cast<int>(weights)));
            const Instance instance = make_workload(weights, T, prng);
            Alg2Weighted policy;
            const Schedule schedule = run_online(instance, G, policy);
            const Cost opt =
                offline_online_optimum(instance, G).best_cost;
            const double ratio =
                static_cast<double>(schedule.online_cost(instance, G)) /
                static_cast<double>(opt);
            const double util =
                lemma35_utilization(instance, schedule, G);
            const std::scoped_lock lock(mutex);
            ratios.add(ratio);
            utils.add(util);
          });
          table.row()
              .add(weight_name(weights))
              .add(G)
              .add(T)
              .add(ratios.mean(), 3)
              .add(ratios.percentile(95), 3)
              .add(ratios.max(), 3)
              .add(utils.max(), 3);
        }
      }
    }
    table.print(std::cout);
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

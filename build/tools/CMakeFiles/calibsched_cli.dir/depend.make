# Empty dependencies file for calibsched_cli.
# This may be replaced when dependencies are built.

// Cooperative per-task budgets: deadlines and step limits for long
// solver loops.
//
// A Budget is checked (charge()) at the natural work-unit boundaries of
// whatever it guards — one online-driver time step, one DP state — and
// throws BudgetExceeded when a limit is hit, which the harness converts
// into a structured `timeout` row instead of a hung thread. Step limits
// are deterministic (a pure function of the work done); wall-clock
// deadlines are the pragmatic guard against genuinely runaway cells and
// are checked only every kClockCheckPeriod charges to keep the hot loop
// free of syscalls.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace calib {

/// Thrown by Budget::charge(); carries no wall-clock values so that
/// deterministically-budgeted runs produce byte-identical messages.
class BudgetExceeded : public std::runtime_error {
 public:
  explicit BudgetExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

class Budget {
 public:
  /// Default-constructed budgets are unlimited; charge() never throws.
  Budget() = default;

  /// Wall-clock deadline `ms` milliseconds from now.
  [[nodiscard]] static Budget deadline_ms(double ms);
  /// At most `limit` charged steps (limit 0: the first charge throws).
  [[nodiscard]] static Budget steps(std::uint64_t limit);

  void set_deadline_ms(double ms);
  void set_step_limit(std::uint64_t limit);

  [[nodiscard]] bool unlimited() const {
    return !has_deadline_ && step_limit_ == kNoLimit;
  }
  [[nodiscard]] std::uint64_t steps_used() const { return used_; }

  /// Record `n` units of work; throws BudgetExceeded once a limit is
  /// passed. Step limits are checked on every call, the wall clock every
  /// kClockCheckPeriod charged units.
  void charge(std::uint64_t n = 1);

  static constexpr std::uint64_t kClockCheckPeriod = 64;

 private:
  static constexpr std::uint64_t kNoLimit = ~std::uint64_t{0};

  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t step_limit_ = kNoLimit;
  std::uint64_t used_ = 0;
  std::uint64_t since_clock_check_ = 0;
};

}  // namespace calib

// The Figure 1 linear program: an LP relaxation whose optimum lower
// bounds the cost (flow + G * calibrations) of *every* schedule, used by
// the paper to analyze Algorithm 3 via primal-dual (Theorem 3.10).
//
// Variables (all >= 0):
//   f_{t,j}  - 1 while job j incurs flow at step t (t in [r_j, H))
//   c_{t,m}  - calibration on machine m begins at t (t in [lo, H))
//   a_{j,m}  - job j assigned to machine m
// Constraints (paper's, with the summation windows read soundly —
// DESIGN.md ambiguity #2):
//   (1) f_{t,j} + sum_{t'=r_j-T..t} c_{t',m} >= a_{j,m}   for all j, t>=r_j, m
//   (2) sum_{j:r_j<t} (f_{t,j} - f_{t-1,j})
//         + sum_m sum_{t'=t-T..t} c_{t',m} >= 0           for all t
//   (3) sum_m a_{j,m} >= 1                                for all j
//   (4) f_{r_j,j} = 1                                     for all j
// Objective: minimize sum f + G * sum c.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "lp/simplex.hpp"

namespace calib {

/// Index bookkeeping for the Figure 1 LP over a finite horizon.
class CalibrationLp {
 public:
  /// Horizon defaults to instance.horizon(); lo is the earliest useful
  /// calibration start, min release + 1 - T.
  CalibrationLp(const Instance& instance, Cost G);

  [[nodiscard]] const LpProblem& problem() const { return problem_; }
  [[nodiscard]] const Instance& instance() const { return instance_; }
  [[nodiscard]] Cost G() const { return G_; }
  [[nodiscard]] Time horizon() const { return horizon_; }
  [[nodiscard]] Time calibration_lo() const { return lo_; }

  // Variable lookups (CHECK on out-of-range).
  [[nodiscard]] int f_var(Time t, JobId j) const;
  [[nodiscard]] int c_var(Time t, MachineId m) const;
  [[nodiscard]] int a_var(JobId j, MachineId m) const;

  /// Solve the LP; value is a certified lower bound on the online
  /// objective of any schedule for the instance.
  [[nodiscard]] LpSolution solve() const;

  /// The canonical primal point of a concrete schedule (Figure 1's
  /// variable-assignment paragraph). Used by tests to certify the LP is
  /// a relaxation: this point must be feasible with objective equal to
  /// the schedule's online cost.
  [[nodiscard]] std::vector<double> canonical_point(
      const Schedule& schedule) const;

  /// Max constraint violation of `x` (0 means feasible).
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

  /// Objective value at `x`.
  [[nodiscard]] double objective_at(const std::vector<double>& x) const;

 private:
  void build();

  const Instance& instance_;
  Cost G_;
  Time horizon_;
  Time lo_;
  LpProblem problem_;
  std::vector<int> f_index_;  // (t - r_j rows flattened per job)
  std::vector<int> f_base_;   // per job, base offset into f_index_
  int c_base_ = 0;
  int a_base_ = 0;
};

/// Convenience: the Figure 1 LP lower bound for (instance, G).
double lp_lower_bound(const Instance& instance, Cost G);

}  // namespace calib

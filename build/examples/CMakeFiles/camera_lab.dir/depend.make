# Empty dependencies file for camera_lab.
# This may be replaced when dependencies are built.

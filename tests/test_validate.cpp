// The independent validation oracle (core/validate.hpp): exact cost
// recomputation on feasible schedules, and detection of every
// feasibility violation class — including deliberately corrupted
// schedules that Schedule's own cost accessors would happily price.
#include <gtest/gtest.h>

#include "core/calendar.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/validate.hpp"
#include "online/driver.hpp"
#include "online/registry.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

// Two jobs, one machine, T = 3: place both inside one calibration.
Instance two_job_instance() {
  return Instance({{0, 2}, {1, 1}}, /*calibration_length=*/3);
}

Schedule feasible_schedule(const Instance& instance) {
  Calendar calendar(instance.T(), instance.machines());
  calendar.add(0, 0);  // covers steps [0, 3)
  Schedule schedule(calendar, instance.size());
  schedule.place(0, 0, 0);
  schedule.place(1, 0, 1);
  return schedule;
}

TEST(ValidateOracle, AcceptsAFeasibleScheduleAndRecomputesTheCost) {
  const Instance instance = two_job_instance();
  const Schedule schedule = feasible_schedule(instance);
  const ValidationReport report = validate_schedule(instance, schedule, 5);
  EXPECT_TRUE(report.feasible()) << report.violation;
  EXPECT_EQ(report.calibrations, 1);
  // flow = 2*(0+1-0) + 1*(1+1-1) = 3; objective = 5*1 + 3.
  EXPECT_EQ(report.flow, 3);
  EXPECT_EQ(report.objective, 8);
  // The oracle's recomputation must agree with Schedule's accessors on
  // healthy input — they share no code, only the Section 2 definition.
  EXPECT_EQ(report.flow, schedule.weighted_flow(instance));
  EXPECT_EQ(report.objective, schedule.online_cost(instance, 5));
}

TEST(ValidateOracle, FlagsASlotCollision) {
  const Instance instance = two_job_instance();
  Schedule schedule = feasible_schedule(instance);
  schedule.place(0, 0, 1);  // both jobs at (machine 0, t=1), both released
  const ValidationReport report = validate_schedule(instance, schedule, 5);
  EXPECT_FALSE(report.feasible());
  EXPECT_NE(report.violation.find("collides"), std::string::npos)
      << report.violation;
  // Schedule::weighted_flow would still price this corrupted schedule;
  // the oracle is what refuses it.
  EXPECT_GT(schedule.weighted_flow(instance), 0);
}

TEST(ValidateOracle, FlagsAnUncalibratedStep) {
  const Instance instance = two_job_instance();
  Schedule schedule = feasible_schedule(instance);
  schedule.place(1, 0, 7);  // the only calibration covers [0, 3)
  const ValidationReport report = validate_schedule(instance, schedule, 5);
  EXPECT_FALSE(report.feasible());
  EXPECT_NE(report.violation.find("uncalibrated"), std::string::npos)
      << report.violation;
}

TEST(ValidateOracle, FlagsAStartBeforeRelease) {
  const Instance instance = two_job_instance();
  Schedule schedule = feasible_schedule(instance);
  schedule.place(1, 0, 0);   // job 1 released at t=1
  schedule.place(0, 0, 1);   // keep the slots distinct
  const ValidationReport report = validate_schedule(instance, schedule, 5);
  EXPECT_FALSE(report.feasible());
  EXPECT_NE(report.violation.find("before its release"), std::string::npos)
      << report.violation;
}

TEST(ValidateOracle, FlagsAnUnscheduledJob) {
  const Instance instance = two_job_instance();
  Schedule schedule = feasible_schedule(instance);
  schedule.unplace(1);
  const ValidationReport report = validate_schedule(instance, schedule, 5);
  EXPECT_FALSE(report.feasible());
  EXPECT_NE(report.violation.find("unscheduled"), std::string::npos)
      << report.violation;
}

TEST(ValidateOracle, FlagsShapeMismatches) {
  const Instance instance = two_job_instance();
  const Schedule schedule = feasible_schedule(instance);
  // Same placements, instance with a different T: the calendar no
  // longer describes the model the instance lives in.
  const Instance other_T({{0, 2}, {1, 1}}, /*calibration_length=*/4);
  EXPECT_FALSE(validate_schedule(other_T, schedule, 5).feasible());
  // Wrong job count.
  const Instance three_jobs({{0, 2}, {1, 1}, {2, 1}}, 3);
  EXPECT_FALSE(validate_schedule(three_jobs, schedule, 5).feasible());
  // G below 1 is outside the model.
  EXPECT_FALSE(validate_schedule(instance, schedule, 0).feasible());
}

TEST(ValidateOracle, FlagsAReleaseCollisionNormalizationViolation) {
  // Three jobs released at t=0 on one machine: footnote 1 requires at
  // most P per release time, so this instance is outside the model even
  // if the placements themselves are legal.
  const Instance instance({{0, 1}, {0, 1}, {0, 1}}, 3);
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  Schedule schedule(calendar, 3);
  schedule.place(0, 0, 0);
  schedule.place(1, 0, 1);
  schedule.place(2, 0, 2);
  const ValidationReport report = validate_schedule(instance, schedule, 5);
  EXPECT_FALSE(report.feasible());
  EXPECT_NE(report.violation.find("normalization"), std::string::npos)
      << report.violation;
}

TEST(ValidateOracle, InfeasibleReportsZeroTheCosts) {
  const Instance instance = two_job_instance();
  Schedule schedule = feasible_schedule(instance);
  schedule.place(1, 0, 0);
  const ValidationReport report = validate_schedule(instance, schedule, 5);
  EXPECT_FALSE(report.feasible());
  EXPECT_EQ(report.objective, 0);
  EXPECT_EQ(report.flow, 0);
  EXPECT_EQ(report.calibrations, 0);
}

TEST(ValidateOracle, AgreesWithEverySolverOnGeneratedInstances) {
  // Cross-check the oracle against live solver output: for every policy
  // in the registry, on a few generated instances, the from-scratch
  // recomputation must match summarize_schedule's accounting exactly.
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    Prng prng(seed);
    PoissonConfig config;
    config.rate = 0.4;
    config.steps = 20;
    const Instance instance = poisson_instance(config, /*T=*/3,
                                               /*machines=*/1, prng);
    if (instance.empty()) continue;
    for (const std::string& name : PolicyRegistry::instance().names()) {
      PolicyParams params;
      params.seed = seed;
      const auto policy = make_policy(name, params);
      const Cost G = 6;
      const Schedule schedule =
          run_online(instance, G, *policy, nullptr, nullptr);
      const ValidationReport report =
          validate_schedule(instance, schedule, G);
      ASSERT_TRUE(report.feasible())
          << name << " seed " << seed << ": " << report.violation;
      EXPECT_EQ(report.flow, schedule.weighted_flow(instance)) << name;
      EXPECT_EQ(report.objective, schedule.online_cost(instance, G)) << name;
      EXPECT_EQ(report.calibrations,
                static_cast<int>(schedule.calendar().count()))
          << name;
    }
  }
}

}  // namespace
}  // namespace calib

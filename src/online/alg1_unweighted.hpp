// Algorithm 1 (paper Section 3.1): online unweighted calibration on one
// machine, 3-competitive (Theorem 3.3).
//
// Delay arriving jobs until either their hypothetical flow reaches G or
// G/T jobs wait; additionally, *immediately* recalibrate on an arrival
// that follows an interval whose jobs had total flow below G/2.
#pragma once

#include "online/policy.hpp"

namespace calib {

class Alg1Unweighted final : public OnlinePolicy {
 public:
  /// `immediate_calibrations` = the line 11-14 rule; disabling it is the
  /// simplification the paper describes for the T < G/T regime (E9).
  explicit Alg1Unweighted(bool immediate_calibrations = true)
      : immediate_(immediate_calibrations) {}

  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kFifo;
  }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override {
    return immediate_ ? "alg1" : "alg1-noimm";
  }

 private:
  bool immediate_;
};

}  // namespace calib

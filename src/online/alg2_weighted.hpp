// Algorithm 2 (paper Section 3.2): online weighted calibration on one
// machine, 12-competitive (Theorem 3.8; 6-competitive against the
// release-ordered optimum OPT_r).
//
// Calibrates when the waiting weight reaches G/T, the queue holds T
// jobs, or the hypothetical queue flow reaches G. No immediate
// calibrations.
//
// Note on line 13: the paper prints "extract the job with *smallest*
// weight", which contradicts Observation 2.1 and the proof of Lemma 3.5
// (both take the heaviest job). We default to heaviest-first and expose
// the literal reading as an ablation (DESIGN.md ambiguity #1).
#pragma once

#include "online/policy.hpp"

namespace calib {

class Alg2Weighted final : public OnlinePolicy {
 public:
  explicit Alg2Weighted(QueueOrder extraction = QueueOrder::kHeaviestFirst)
      : extraction_(extraction) {}

  [[nodiscard]] QueueOrder order() const override { return extraction_; }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override {
    return extraction_ == QueueOrder::kHeaviestFirst ? "alg2"
                                                     : "alg2-lightest";
  }

 private:
  QueueOrder extraction_;
};

}  // namespace calib

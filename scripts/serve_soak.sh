#!/usr/bin/env bash
# Daemon soak smoke: run `calibsched serve` (ASan build by default) with
# fault injection armed, hammer it with a mix of clean and chaos clients
# for SOAK_SECONDS, then prove the robustness envelope end to end:
#
#   * clean tenants keep getting validated decision streams throughout
#     (the daemon never wedges under flood/corrupt/disconnect abuse)
#   * admission sheds surface as RETRY_AFTER rejections (client exit 4),
#     never as daemon growth or death
#   * SIGTERM drains gracefully: exit 0, flight log ends in `shutdown`
#   * `serve --resume` restores a journaled session and a reattached
#     client continues it (decision seq picks up where it left off)
#
# Usage: scripts/serve_soak.sh [build-dir]     (default: build-asan)
# Env:   SOAK_SECONDS (default 30), SOAK_OUT (default soak-out/)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build-asan}"
CLI="$BUILD/tools/calibsched_cli"
DURATION="${SOAK_SECONDS:-30}"
OUT="${SOAK_OUT:-soak-out}"
mkdir -p "$OUT"
# Unix socket paths are capped near 108 bytes; CI workspaces are deep,
# so the socket lives under /tmp regardless of $OUT.
SOCK="${TMPDIR:-/tmp}/calibsched_soak_$$.sock"
JOURNAL="$OUT/serve.journal.jsonl"
EVENTS="$OUT/serve.events.jsonl"
rm -f "$SOCK" "$JOURNAL" "$EVENTS"

[ -x "$CLI" ] || { echo "serve_soak: no CLI at $CLI (build first)" >&2; exit 1; }

DAEMON_PID=""
cleanup() {  # an aborted run must not leak a daemon holding our pipes
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -f "$SOCK"
}
trap cleanup EXIT

start_daemon() {  # args: extra flags
  # The socket file is the readiness signal, so a stale one from the
  # previous daemon must be gone before the spawn.
  rm -f "$SOCK"
  # --max-sessions is large because abandoned chaos sessions (vandals
  # never say goodbye) legitimately accumulate until the restart.
  "$CLI" serve --socket "$SOCK" --journal "$JOURNAL" --events "$EVENTS" \
    --max-sessions 8192 \
    --max-pending 4 --rate-limit 500 --decision-deadline-ms 1000 \
    --inject-faults "slow-tenant=20@slowpoke,flood=20@floodme" \
    "$@" 2>"$OUT/serve.stderr" &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "serve_soak: daemon died during startup" >&2
      cat "$OUT/serve.stderr" >&2
      exit 1
    }
    sleep 0.1
  done
  echo "serve_soak: daemon never bound $SOCK" >&2
  exit 1
}

stop_daemon() {  # SIGTERM must drain to exit 0
  kill -TERM "$DAEMON_PID"
  local rc=0
  wait "$DAEMON_PID" || rc=$?
  DAEMON_PID=""
  if [ "$rc" -ne 0 ]; then
    echo "serve_soak: daemon exit $rc after SIGTERM (want 0)" >&2
    cat "$OUT/serve.stderr" >&2
    exit 1
  fi
}

start_daemon

JOBS="0:3,2:1,5:2,9:1"
DEADLINE=$(( $(date +%s) + DURATION ))
ROUND=0
CLEAN_OK=0
SHEDS_SEEN=0
while [ "$(date +%s)" -lt "$DEADLINE" ]; do
  ROUND=$((ROUND + 1))
  # Clean tenant: must stream and drain validated every single round.
  "$CLI" client --socket "$SOCK" --tenant "good$ROUND" --submit "$JOBS" \
    > "$OUT/good.last.jsonl"
  CLEAN_OK=$((CLEAN_OK + 1))

  # Chaos: a reader-poisoning frame, a mid-frame disconnect, and a
  # flood burst into a 4-deep pending budget. The daemon must shrug all
  # three off; the flood legitimately exits 4 when sheds come back.
  "$CLI" client --socket "$SOCK" --tenant "vandal$ROUND" \
    --chaos corrupt-frame --submit "$JOBS" >/dev/null || true
  "$CLI" client --socket "$SOCK" --tenant "ghost$ROUND" \
    --chaos disconnect-mid-frame --submit "$JOBS" >/dev/null || true
  rc=0
  "$CLI" client --socket "$SOCK" --tenant "floodme" --chaos flood \
    --submit "0:1,1:1,2:1,3:1,4:1,5:1,6:1,7:1,8:1,9:1,10:1,11:1" \
    > "$OUT/flood.last.jsonl" || rc=$?
  case "$rc" in
    0) ;;
    4) SHEDS_SEEN=$((SHEDS_SEEN + 1)) ;;
    *) echo "serve_soak: flood client exit $rc (want 0 or 4)" >&2; exit 1 ;;
  esac
  # A deliberately slowed (but within-deadline) tenant keeps working.
  # The fault spec matches the exact name, and the goodbye drain frees
  # it for the next round.
  "$CLI" client --socket "$SOCK" --tenant "slowpoke" \
    --submit "0:2,4:1" >/dev/null
done

# Leave one session open across the restart: no goodbye, so the journal
# keeps it alive for --resume.
"$CLI" client --socket "$SOCK" --tenant "resumer" --submit "0:2,3:1" \
  --no-goodbye > "$OUT/resumer.before.jsonl"

stop_daemon

python3 - "$JOURNAL" "$EVENTS" <<'EOF'
import json, sys
journal = [json.loads(l) for l in open(sys.argv[1])]
assert journal and "calibsched_journal" in journal[0], journal[:1]
kinds = {e.get("event") for e in journal[1:]}
assert "hello" in kinds and "job" in kinds and "bye" in kinds, kinds
events = [json.loads(l) for l in open(sys.argv[2])]
names = [e["event"] for e in events]
assert "listen" in names and "drain" in names, set(names)
assert names[-1] == "shutdown", names[-1]
print("soak artifacts ok:", len(journal) - 1, "journal entries,",
      len(events), "flight events")
EOF

# Resume: the journaled `resumer` session continues where it stopped.
start_daemon --resume
"$CLI" client --socket "$SOCK" --tenant "resumer" --reattach \
  --submit "7:1" > "$OUT/resumer.after.jsonl"
python3 - "$OUT/resumer.after.jsonl" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
decisions = [l for l in lines if "seq" in l]
assert decisions and decisions[0]["seq"] == 2, lines  # 2 jobs replayed
stats = [l for l in lines if l.get("state")]
assert stats and stats[-1]["state"] == "drained", lines
assert stats[-1].get("violation", "") == "", lines
print("resume continuation ok: seq", decisions[0]["seq"])
EOF
stop_daemon

rm -f "$SOCK"
echo "serve_soak: ok ($CLEAN_OK clean rounds, $SHEDS_SEEN flood rounds shed)"

file(REMOVE_RECURSE
  "CMakeFiles/calibsched_deadline.dir/deadline/deadline_instance.cpp.o"
  "CMakeFiles/calibsched_deadline.dir/deadline/deadline_instance.cpp.o.d"
  "CMakeFiles/calibsched_deadline.dir/deadline/edf.cpp.o"
  "CMakeFiles/calibsched_deadline.dir/deadline/edf.cpp.o.d"
  "CMakeFiles/calibsched_deadline.dir/deadline/min_calibrations.cpp.o"
  "CMakeFiles/calibsched_deadline.dir/deadline/min_calibrations.cpp.o.d"
  "libcalibsched_deadline.a"
  "libcalibsched_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

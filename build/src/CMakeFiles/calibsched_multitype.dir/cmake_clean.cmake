file(REMOVE_RECURSE
  "CMakeFiles/calibsched_multitype.dir/multitype/multitype_sched.cpp.o"
  "CMakeFiles/calibsched_multitype.dir/multitype/multitype_sched.cpp.o.d"
  "CMakeFiles/calibsched_multitype.dir/multitype/typed_calendar.cpp.o"
  "CMakeFiles/calibsched_multitype.dir/multitype/typed_calendar.cpp.o.d"
  "libcalibsched_multitype.a"
  "libcalibsched_multitype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_multitype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

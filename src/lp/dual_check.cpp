#include "lp/dual_check.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace calib {

double DualPoint::objective() const {
  double value = 0.0;
  for (const double vj : v) value += vj;
  for (const double zj : z) value += zj;
  return value;
}

DualChecker::DualChecker(const CalibrationLp& lp)
    : lp_(lp), instance_(lp.instance()) {}

DualPoint DualChecker::zero_point() const {
  DualPoint point;
  const auto n = static_cast<std::size_t>(instance_.size());
  const auto machines = static_cast<std::size_t>(instance_.machines());
  point.x.resize(n);
  for (JobId j = 0; j < instance_.size(); ++j) {
    const auto span = static_cast<std::size_t>(
        lp_.horizon() - instance_.job(j).release);
    point.x[static_cast<std::size_t>(j)].assign(
        machines, std::vector<double>(span, 0.0));
  }
  point.y.assign(
      static_cast<std::size_t>(lp_.horizon() - lp_.calibration_lo() - 1),
      0.0);
  point.v.assign(n, 0.0);
  point.z.assign(n, 0.0);
  return point;
}

DualPoint DualChecker::static_point() const {
  DualPoint point = zero_point();
  Weight w_min = instance_.job(0).weight;
  for (const Job& job : instance_.jobs()) {
    w_min = std::min(w_min, job.weight);
  }
  const double level = static_cast<double>(lp_.G()) /
                       (2.0 * static_cast<double>(instance_.T()));
  // y_t = min(G/2T, w_min * (H - t)): flat at the proof's level, then a
  // linear taper (slope <= w_min) so the boundary rows stay feasible.
  const Time y0 = lp_.calibration_lo() + 1;
  for (std::size_t i = 0; i < point.y.size(); ++i) {
    const Time t = y0 + static_cast<Time>(i);
    point.y[i] = std::min(
        level, static_cast<double>(w_min) *
                   static_cast<double>(lp_.horizon() - t));
  }
  auto y_at = [&](Time t) -> double {
    if (t < y0 || t >= lp_.horizon()) return 0.0;
    return point.y[static_cast<std::size_t>(t - y0)];
  };
  for (JobId j = 0; j < instance_.size(); ++j) {
    const Job& job = instance_.job(j);
    point.z[static_cast<std::size_t>(j)] =
        std::min(level, static_cast<double>(job.weight) +
                            y_at(job.release + 1));
  }
  return point;
}

double DualChecker::max_violation(const DualPoint& point) const {
  const int n = instance_.size();
  const int P = instance_.machines();
  const Time T = instance_.T();
  const Time H = lp_.horizon();
  const Time lo = lp_.calibration_lo();
  const Time y0 = lo + 1;

  auto x_at = [&](Time t, JobId j, MachineId m) -> double {
    const Time r = instance_.job(j).release;
    if (t < r || t >= H) return 0.0;
    return point.x[static_cast<std::size_t>(j)][static_cast<std::size_t>(m)]
                  [static_cast<std::size_t>(t - r)];
  };
  auto y_at = [&](Time t) -> double {
    if (t < y0 || t >= H) return 0.0;
    return point.y[static_cast<std::size_t>(t - y0)];
  };

  double worst = 0.0;
  // Nonnegativity (z is free).
  for (const auto& per_job : point.x) {
    for (const auto& per_machine : per_job) {
      for (const double value : per_machine) {
        worst = std::max(worst, -value);
      }
    }
  }
  for (const double value : point.y) worst = std::max(worst, -value);
  for (const double value : point.v) worst = std::max(worst, -value);

  // Column of f_{t,j}: sum_m x_{t,j,m} + [t > r_j] y_t - y_{t+1}
  //                     + [t == r_j] z_j <= w_j.
  for (JobId j = 0; j < n; ++j) {
    const Job& job = instance_.job(j);
    for (Time t = job.release; t < H; ++t) {
      double lhs = -y_at(t + 1);
      for (MachineId m = 0; m < P; ++m) lhs += x_at(t, j, m);
      if (t > job.release) {
        lhs += y_at(t);
      } else {
        lhs += point.z[static_cast<std::size_t>(j)];
      }
      worst = std::max(worst, lhs - static_cast<double>(job.weight));
    }
  }
  // Column of c_{t,m}: sum_{j: r_j <= t+T} sum_{t' >= max(r_j, t)} x
  //                     + sum_{t'=t}^{t+T} y_{t'} <= G.
  for (Time t = lo; t < H; ++t) {
    for (MachineId m = 0; m < P; ++m) {
      double lhs = 0.0;
      for (JobId j = 0; j < n; ++j) {
        if (instance_.job(j).release > t + T) continue;
        for (Time tp = std::max(instance_.job(j).release, t); tp < H; ++tp) {
          lhs += x_at(tp, j, m);
        }
      }
      for (Time tp = t; tp <= t + T; ++tp) lhs += y_at(tp);
      worst = std::max(worst, lhs - static_cast<double>(lp_.G()));
    }
  }
  // Column of a_{j,m}: v_j - sum_t x_{t,j,m} <= 0.
  for (JobId j = 0; j < n; ++j) {
    for (MachineId m = 0; m < P; ++m) {
      double lhs = point.v[static_cast<std::size_t>(j)];
      for (Time t = instance_.job(j).release; t < H; ++t) {
        lhs -= x_at(t, j, m);
      }
      worst = std::max(worst, lhs);
    }
  }
  return worst;
}

}  // namespace calib

#include "core/transform.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "util/check.hpp"

namespace calib {

Schedule to_release_order(const Instance& instance, const Schedule& schedule) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "Lemma 3.4 transformation is stated for one machine");
  CALIB_CHECK(!schedule.validate(instance).has_value());
  const int n = instance.size();
  const Time T = instance.T();

  // Pass 1 (the lemma's latest-to-earliest sweep): job i may only move
  // earlier, and must land strictly before the next-released job's new
  // start. Distinct releases guarantee the result respects releases.
  std::vector<Time> new_start(static_cast<std::size_t>(n));
  Time cap = std::numeric_limits<Time>::max();
  for (JobId j = static_cast<JobId>(n - 1); j >= 0; --j) {
    const Time original = schedule.placement(j).start;
    const Time t = std::min(original, cap - 1);
    CALIB_CHECK_MSG(t >= instance.job(j).release,
                    "transformation pushed job " << j << " before release; "
                    "are release times distinct?");
    new_start[static_cast<std::size_t>(j)] = t;
    cap = t;
  }

  // Pass 2: rebuild the calibration set. Keep every original calibration
  // (the lemma's accounting leaves them in place), then cover each
  // maximal run of occupied-but-uncalibrated steps with back-to-back
  // intervals. The lemma bounds the additions by the original count.
  Calendar calendar = schedule.calendar();
  std::set<Time> uncovered;
  for (JobId j = 0; j < n; ++j) {
    const Time t = new_start[static_cast<std::size_t>(j)];
    if (!calendar.covers(0, t)) uncovered.insert(t);
  }
  while (!uncovered.empty()) {
    const Time start = *uncovered.begin();
    calendar.add(0, start);
    uncovered.erase(uncovered.begin(),
                    uncovered.upper_bound(start + T - 1));
  }

  Schedule result(std::move(calendar), n);
  for (JobId j = 0; j < n; ++j) {
    result.place(j, 0, new_start[static_cast<std::size_t>(j)]);
  }
  return result;
}

bool is_release_ordered(const Instance& instance, const Schedule& schedule) {
  std::vector<JobId> order;
  order.reserve(static_cast<std::size_t>(instance.size()));
  for (JobId j = 0; j < instance.size(); ++j) {
    if (!schedule.is_placed(j)) return false;
    order.push_back(j);
  }
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    const Placement& pa = schedule.placement(a);
    const Placement& pb = schedule.placement(b);
    if (pa.start != pb.start) return pa.start < pb.start;
    return pa.machine < pb.machine;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (instance.job(order[i - 1]).release > instance.job(order[i]).release)
      return false;
  }
  return true;
}

}  // namespace calib

// Non-unit preemptible jobs (E14): EDF == Hall as feasibility oracles,
// exact minimum calibrations, lazy binning generalization.
#include <gtest/gtest.h>

#include "nonunit/nonunit.hpp"
#include "util/prng.hpp"

namespace calib {
namespace {

NonUnitInstance random_nonunit(int count, Time span, Time T, Time p_max,
                               Prng& prng) {
  std::vector<NonUnitJob> jobs;
  for (int i = 0; i < count; ++i) {
    const Time release = prng.uniform_int(0, span - 1);
    const Time processing = prng.uniform_int(1, p_max);
    const Time slack = prng.uniform_int(0, span / 2);
    jobs.push_back(
        NonUnitJob{release, release + processing + slack, processing});
  }
  return NonUnitInstance(std::move(jobs), T);
}

TEST(NonUnit, InstanceValidation) {
  EXPECT_DEATH(NonUnitInstance({NonUnitJob{0, 2, 3}}, 2),
               "cannot fit processing");
  const NonUnitInstance ok({NonUnitJob{0, 3, 3}}, 2);
  EXPECT_EQ(ok.total_processing(), 3);
}

TEST(NonUnit, EdfHandlesPreemption) {
  // A long low-urgency job preempted by a tight one mid-way.
  const NonUnitInstance instance(
      {NonUnitJob{0, 10, 4}, NonUnitJob{2, 4, 2}}, 10);
  Calendar calendar(10, 1);
  calendar.add(0, 0);
  EXPECT_TRUE(edf_feasible_nonunit(instance, calendar));
}

TEST(NonUnit, EdfDetectsOverload) {
  const NonUnitInstance instance(
      {NonUnitJob{0, 4, 3}, NonUnitJob{0, 4, 3}}, 8);
  Calendar calendar(8, 1);
  calendar.add(0, 0);
  EXPECT_FALSE(edf_feasible_nonunit(instance, calendar));
}

TEST(NonUnit, EdfEqualsHallOnRandomInstances) {
  Prng prng(2201);
  for (int trial = 0; trial < 150; ++trial) {
    const NonUnitInstance instance = random_nonunit(4, 8, 3, 3, prng);
    std::vector<Time> starts;
    const auto count = static_cast<int>(prng.uniform_int(1, 4));
    for (int c = 0; c < count; ++c) {
      starts.push_back(prng.uniform_int(-2, 12));
    }
    const Calendar calendar = Calendar::round_robin(starts, 3, 1);
    EXPECT_EQ(edf_feasible_nonunit(instance, calendar),
              hall_feasible_nonunit(instance, calendar))
        << instance.to_string() << ' ' << calendar.to_string();
  }
}

TEST(NonUnit, ExactMinimumOnKnownInstance) {
  // 6 units of work in a tight window with T = 3: two calibrations.
  const NonUnitInstance instance(
      {NonUnitJob{0, 6, 3}, NonUnitJob{0, 6, 3}}, 3);
  const auto exact = min_calibrations_nonunit(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->count(), 2);
}

TEST(NonUnit, InfeasibleWindowReturnsNullopt) {
  // 5 units due by 4: impossible no matter how many calibrations.
  const NonUnitInstance instance(
      {NonUnitJob{0, 4, 3}, NonUnitJob{0, 4, 2}},
      3);
  EXPECT_FALSE(min_calibrations_nonunit(instance).has_value());
  EXPECT_FALSE(lazy_binning_nonunit(instance).has_value());
}

TEST(NonUnit, LazyPushesLate) {
  const NonUnitInstance instance({NonUnitJob{0, 20, 3}}, 5);
  const auto lazy = lazy_binning_nonunit(instance);
  ASSERT_TRUE(lazy.has_value());
  ASSERT_EQ(lazy->count(), 1);
  // Latest start that still fits 3 units before 20: slots 17, 18, 19.
  EXPECT_EQ(lazy->starts(0).front(), 17);
}

TEST(NonUnit, LazyMatchesExactOnRandomSweeps) {
  Prng prng(2202);
  int optimal = 0;
  int total = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const NonUnitInstance instance = random_nonunit(4, 8, 3, 3, prng);
    const auto lazy = lazy_binning_nonunit(instance);
    const auto exact = min_calibrations_nonunit(instance);
    ASSERT_EQ(lazy.has_value(), exact.has_value()) << instance.to_string();
    if (!lazy.has_value()) continue;
    EXPECT_TRUE(edf_feasible_nonunit(instance, *lazy))
        << instance.to_string();
    EXPECT_GE(lazy->count(), exact->count());
    ++total;
    if (lazy->count() == exact->count()) ++optimal;
  }
  // The generalization tracks the optimum on the vast majority of
  // instances; E14 reports the exact rate. Guard against regressions.
  EXPECT_GT(total, 30);
  EXPECT_GE(optimal * 10, total * 9) << optimal << '/' << total;
}

TEST(NonUnit, WorkloadLowerBoundHolds) {
  Prng prng(2203);
  for (int trial = 0; trial < 20; ++trial) {
    const NonUnitInstance instance = random_nonunit(4, 10, 4, 4, prng);
    const auto exact = min_calibrations_nonunit(instance);
    if (!exact.has_value()) continue;
    const auto lower = (instance.total_processing() + instance.T() - 1) /
                       instance.T();
    EXPECT_GE(exact->count(), static_cast<int>(lower));
  }
}

}  // namespace
}  // namespace calib

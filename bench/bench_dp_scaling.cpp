// E6 — Theorem 4.7: the offline DP runs in O(K n^3).
//
// Times the DP over an n-sweep (K proportional to n) and a K-sweep
// (n fixed), then fits a power law to the n-sweep. Expected shape:
// fitted exponent <= ~4 in n when K ~ n (the paper counts O(K n^3) for
// the full budget range, i.e. n^4 total here) and near-linear in K.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "offline/dp.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

Instance dp_instance(int jobs, Prng& prng) {
  return sparse_uniform_instance(jobs, jobs * 3, 5, 1,
                                 WeightModel::kUniform, 9, prng);
}

void BM_DpSolve(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const int budget = static_cast<int>(state.range(1));
  Prng prng(static_cast<std::uint64_t>(jobs));
  const Instance instance = dp_instance(jobs, prng);
  for (auto _ : state) {
    OfflineDp dp(instance);  // fresh memo each iteration
    benchmark::DoNotOptimize(dp.min_flow(budget));
  }
  state.counters["n"] = jobs;
  state.counters["K"] = budget;
}

BENCHMARK(BM_DpSolve)
    ->Args({20, 5})
    ->Args({40, 10})
    ->Args({60, 15})
    ->Args({80, 20})
    ->Args({120, 30})
    ->Unit(benchmark::kMillisecond);

void BM_DpBudgetSweep(benchmark::State& state) {
  const int budget = static_cast<int>(state.range(0));
  Prng prng(77);
  const Instance instance = dp_instance(60, prng);
  for (auto _ : state) {
    OfflineDp dp(instance);
    benchmark::DoNotOptimize(dp.min_flow(budget));
  }
}

BENCHMARK(BM_DpBudgetSweep)->Arg(5)->Arg(15)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    const std::vector<int> n_values =
        benchutil::small_mode() ? std::vector<int>{16, 24, 36, 54}
                                : std::vector<int>{16, 24, 36, 54, 80, 120,
                                                   180};
    std::cout << "\nE6 / Theorem 4.7 - DP runtime scaling "
                 "(K = n/4, median of 3 runs):\n";
    Table table({"n", "K", "runtime ms", "flow"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (const int jobs : n_values) {
      Prng prng(static_cast<std::uint64_t>(jobs) * 31337u);
      const Instance instance = dp_instance(jobs, prng);
      const int budget = std::max(1, jobs / 4);
      Summary times;
      Cost flow = 0;
      for (int rep = 0; rep < 3; ++rep) {
        OfflineDp dp(instance);
        Timer timer;
        flow = dp.min_flow(budget);
        times.add(timer.millis());
      }
      table.row()
          .add(jobs)
          .add(budget)
          .add(times.median(), 2)
          .add(flow);
      xs.push_back(static_cast<double>(jobs));
      ys.push_back(std::max(times.median(), 1e-3));
    }
    table.print(std::cout);
    const PowerFit fit = fit_power(xs, ys);
    std::cout << "Power-law fit: time ~ n^" << fit.exponent
              << " (r2=" << fit.r2
              << "); with K ~ n the paper's O(K n^3) predicts an exponent "
                 "of at most 4.\n";
  }
};
// Sidecar declared first so it is destroyed last (snapshot covers the
// table run). Opt in via CALIBSCHED_METRICS=<dir>.
const benchutil::MetricsSidecar sidecar("bench_dp_scaling");  // NOLINT(cert-err58-cpp)
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

// Alg4WeightedMulti (extension E11): validity on weighted multi-machine
// inputs, degeneration to Algorithm-2-like behavior on one machine,
// and sane cost against the LP lower bound.
#include <gtest/gtest.h>

#include "lp/calib_lp.hpp"
#include "online/alg2_weighted.hpp"
#include "online/alg4_weighted_multi.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Alg4, ValidOnWeightedMultiMachine) {
  Prng prng(1701);
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = sparse_uniform_instance(
        10, 20, 4, 3, WeightModel::kUniform, 7, prng);
    Alg4WeightedMulti policy;
    const Schedule schedule = run_online(instance, 12, policy);
    EXPECT_EQ(schedule.validate(instance), std::nullopt)
        << instance.to_string();
  }
}

TEST(Alg4, UsesEveryMachineUnderLoad) {
  std::vector<Job> jobs;
  for (int i = 0; i < 18; ++i) jobs.push_back(Job{i / 3, 1 + i % 5});
  const Instance instance = Instance(jobs, 3, 3).normalized();
  Alg4WeightedMulti policy;
  const Schedule schedule = run_online(instance, 6, policy);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  for (MachineId m = 0; m < 3; ++m) {
    EXPECT_GE(schedule.calendar().starts(m).size(), 1u) << "machine " << m;
  }
}

TEST(Alg4, HeavyJobsDoNotWaitBehindLightOnes) {
  const Instance instance({Job{0, 1}, Job{1, 9}, Job{2, 1}}, 4, 2);
  Alg4WeightedMulti policy;
  const Schedule schedule = run_online(instance, 6, policy);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  EXPECT_LE(schedule.placement(1).start, schedule.placement(2).start);
}

TEST(Alg4, SingleMachineCostNearAlg2) {
  // On P = 1 the policies differ only in assignment timing details;
  // objectives should track each other within a small factor.
  Prng prng(1702);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance instance = sparse_uniform_instance(
        8, 24, 4, 1, WeightModel::kUniform, 6, prng);
    Alg4WeightedMulti alg4;
    Alg2Weighted alg2;
    const Cost c4 = online_objective(instance, 10, alg4);
    const Cost c2 = online_objective(instance, 10, alg2);
    EXPECT_LE(c4, 3 * c2) << instance.to_string();
    EXPECT_LE(c2, 3 * c4) << instance.to_string();
  }
}

TEST(Alg4, WithinConstantOfLpBoundOnSmallInstances) {
  // No guarantee is claimed; this regression bound (12x, the natural
  // conjecture) documents the measured behavior.
  Prng prng(1703);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance instance = sparse_uniform_instance(
        6, 10, 3, 2, WeightModel::kUniform, 4, prng);
    const Cost G = 6;
    Alg4WeightedMulti policy;
    const Cost cost = online_objective(instance, G, policy);
    const double lower = lp_lower_bound(instance, G);
    EXPECT_LE(static_cast<double>(cost), 12.0 * lower)
        << instance.to_string();
  }
}

}  // namespace
}  // namespace calib

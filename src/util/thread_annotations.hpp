// Clang thread-safety-analysis attribute shims.
//
// These macros expose Clang's static lock-checking attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) under stable
// project-local names. Under Clang with -Wthread-safety (the CI lint
// gate builds with -Wthread-safety -Werror via CALIBSCHED_THREAD_SAFETY)
// they make lock discipline a compile error; under GCC and every other
// compiler they expand to nothing, so the annotated code is identical
// to the unannotated code everywhere except the analysis build.
//
// Annotate with the calib::Mutex / calib::MutexLock / calib::CondVar
// wrappers from util/sync.hpp — std::mutex itself carries no capability
// attributes in libstdc++, so the analysis cannot see through it.
//
// Naming follows the canonical capability vocabulary:
//   CALIB_CAPABILITY(x)        class is a lockable capability
//   CALIB_SCOPED_CAPABILITY    RAII class that acquires/releases one
//   CALIB_GUARDED_BY(mu)       data member readable/writable only with
//                              mu held
//   CALIB_PT_GUARDED_BY(mu)    pointee guarded (pointer itself free)
//   CALIB_REQUIRES(...)        function must be called with lock held
//   CALIB_ACQUIRE/RELEASE(...) function takes/drops the lock itself
//   CALIB_TRY_ACQUIRE(b, ...)  try-lock returning `b` on success
//   CALIB_EXCLUDES(...)        function must NOT be called with lock
//                              held (deadlock guard)
//   CALIB_ACQUIRED_AFTER/BEFORE declare lock-ordering edges
//   CALIB_RETURN_CAPABILITY(x) accessor returning a reference to x
//   CALIB_NO_THREAD_SAFETY_ANALYSIS  opt a function out (with a comment
//                              saying why)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define CALIB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CALIB_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CALIB_CAPABILITY(x) CALIB_THREAD_ANNOTATION(capability(x))
#define CALIB_SCOPED_CAPABILITY CALIB_THREAD_ANNOTATION(scoped_lockable)
#define CALIB_GUARDED_BY(x) CALIB_THREAD_ANNOTATION(guarded_by(x))
#define CALIB_PT_GUARDED_BY(x) CALIB_THREAD_ANNOTATION(pt_guarded_by(x))
#define CALIB_REQUIRES(...) \
  CALIB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CALIB_ACQUIRE(...) \
  CALIB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CALIB_RELEASE(...) \
  CALIB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CALIB_TRY_ACQUIRE(...) \
  CALIB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CALIB_EXCLUDES(...) CALIB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CALIB_ACQUIRED_AFTER(...) \
  CALIB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CALIB_ACQUIRED_BEFORE(...) \
  CALIB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CALIB_RETURN_CAPABILITY(x) CALIB_THREAD_ANNOTATION(lock_returned(x))
#define CALIB_NO_THREAD_SAFETY_ANALYSIS \
  CALIB_THREAD_ANNOTATION(no_thread_safety_analysis)

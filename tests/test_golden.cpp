// Golden regression values on the deterministic regression instance
// (two 3-job bursts, mixed weights, T = 4). These pin the exact end-to-
// end numbers of every solver; any behavioral drift — however subtle —
// lands here first.
//
// Values were produced by the validated pipeline (DP == brute force,
// LP <= OPT certified) and are exact integers.
#include <gtest/gtest.h>

#include "lp/calib_lp.hpp"
#include "offline/budget_search.hpp"
#include "offline/dp.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/alg2_weighted.hpp"
#include "online/baselines.hpp"
#include "online/driver.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

struct GoldenRow {
  Cost G;
  Cost alg2;
  Cost eager;
  Cost ski;
  Cost opt;
  double lp;
};

constexpr GoldenRow kWeightedRows[] = {
    {3, 22, 22, 25, 22, 22.0},
    {7, 33, 30, 38, 30, 30.0},
    {15, 59, 46, 66, 46, 46.0},
    {40, 155, 96, 155, 96, 96.0},
};

TEST(Golden, WeightedPoliciesAndOptimum) {
  const Instance instance = regression_instance();
  for (const GoldenRow& row : kWeightedRows) {
    Alg2Weighted alg2;
    EagerPolicy eager;
    SkiRentalPolicy ski;
    EXPECT_EQ(online_objective(instance, row.G, alg2), row.alg2)
        << "G=" << row.G;
    EXPECT_EQ(online_objective(instance, row.G, eager), row.eager)
        << "G=" << row.G;
    EXPECT_EQ(online_objective(instance, row.G, ski), row.ski)
        << "G=" << row.G;
    EXPECT_EQ(offline_online_optimum(instance, row.G).best_cost, row.opt)
        << "G=" << row.G;
  }
}

TEST(Golden, LpBoundIsIntegralOnRegressionInstance) {
  // On this instance the Figure 1 LP is tight (equals OPT) for every
  // listed G — a zero-integrality-gap family worth pinning.
  const Instance instance = regression_instance();
  for (const GoldenRow& row : kWeightedRows) {
    EXPECT_NEAR(lp_lower_bound(instance, row.G), row.lp, 1e-6)
        << "G=" << row.G;
  }
}

TEST(Golden, FlowCurve) {
  // F(k): infeasible below 2 calibrations; two intervals already give
  // the unconstrained-best flow of 16 (each burst fits one interval).
  const Instance instance = regression_instance();
  OfflineDp dp(instance);
  const auto curve = dp.flow_curve(6);
  EXPECT_EQ(curve[0], kInfeasible);
  EXPECT_EQ(curve[1], kInfeasible);
  for (std::size_t k = 2; k < curve.size(); ++k) {
    EXPECT_EQ(curve[k], 16) << "k=" << k;
  }
}

TEST(Golden, UnweightedAlg1) {
  const Instance weighted = regression_instance();
  std::vector<Job> unit_jobs;
  for (const Job& job : weighted.jobs()) {
    unit_jobs.push_back(Job{job.release, 1});
  }
  const Instance instance(unit_jobs, 4, 1);
  const struct {
    Cost G;
    Cost alg1;
    Cost opt;
  } rows[] = {{3, 12, 12}, {7, 26, 20}, {15, 54, 36}};
  for (const auto& row : rows) {
    Alg1Unweighted policy;
    EXPECT_EQ(online_objective(instance, row.G, policy), row.alg1)
        << "G=" << row.G;
    EXPECT_EQ(offline_online_optimum(instance, row.G).best_cost, row.opt)
        << "G=" << row.G;
  }
}

TEST(Golden, DpWitnessShapeIsStable) {
  const Instance instance = regression_instance();
  OfflineDp dp(instance);
  const auto witness = dp.solve(2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->calendar().count(), 2);
  EXPECT_EQ(witness->weighted_flow(instance), 16);
  // Both bursts run back-to-back from their first release.
  EXPECT_EQ(witness->placement(0).start + 1 - instance.job(0).release, 1);
}

}  // namespace
}  // namespace calib

#include "machmin/machine_min.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.hpp"

namespace calib {
namespace {

/// EDF over a per-step capacity function: at each step, run up to
/// capacity(t) released jobs with the earliest deadlines. Feasibility-
/// optimal for unit jobs (exchange argument over the underlying
/// transversal matroid).
template <typename Capacity>
bool edf_feasible_capacity(const DeadlineInstance& instance,
                           Time first_step, Time last_step,
                           const Capacity& capacity) {
  std::vector<DeadlineJob> jobs = instance.jobs();
  std::sort(jobs.begin(), jobs.end(),
            [](const DeadlineJob& a, const DeadlineJob& b) {
              return a.release < b.release;
            });
  std::multiset<Time> waiting;  // deadlines of released, unrun jobs
  std::size_t next = 0;
  for (Time t = first_step; t <= last_step; ++t) {
    while (next < jobs.size() && jobs[next].release <= t) {
      waiting.insert(jobs[next].deadline);
      ++next;
    }
    for (Time used = 0; used < capacity(t) && !waiting.empty(); ++used) {
      if (*waiting.begin() <= t) return false;  // earliest already missed
      waiting.erase(waiting.begin());
    }
    // Any job still waiting with deadline t+1 had its last chance at t.
    if (!waiting.empty() && *waiting.begin() <= t + 1) return false;
  }
  return next == jobs.size() && waiting.empty();
}

}  // namespace

bool edf_feasible_machines(const DeadlineInstance& instance, int machines) {
  CALIB_CHECK(machines >= 0);
  if (instance.empty()) return true;
  if (machines == 0) return false;
  return edf_feasible_capacity(
      instance, instance.min_release(), instance.max_deadline() - 1,
      [machines](Time) { return static_cast<Time>(machines); });
}

int min_machines(const DeadlineInstance& instance) {
  if (instance.empty()) return 0;
  int lo = 1;
  int hi = instance.size();
  CALIB_CHECK_MSG(edf_feasible_machines(instance, hi),
                  "n machines must always suffice for valid windows");
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (edf_feasible_machines(instance, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool edf_feasible_intervals(const DeadlineInstance& instance,
                            const std::vector<Time>& starts) {
  if (instance.empty()) return true;
  if (starts.empty()) return false;
  // Capacity at t = number of intervals covering t.
  std::map<Time, Time> delta;
  for (const Time s : starts) {
    delta[s] += 1;
    delta[s + instance.T()] -= 1;
  }
  std::map<Time, Time> capacity;  // step -> concurrent intervals
  Time running = 0;
  Time previous = 0;
  bool first = true;
  std::vector<std::pair<std::pair<Time, Time>, Time>> segments;
  for (const auto& [time, change] : delta) {
    if (!first && running > 0) {
      segments.push_back({{previous, time}, running});
    }
    running += change;
    previous = time;
    first = false;
  }
  auto capacity_at = [&](Time t) -> Time {
    for (const auto& [range, value] : segments) {
      if (t >= range.first && t < range.second) return value;
    }
    return 0;
  };
  const Time first_step =
      std::min(instance.min_release(),
               *std::min_element(starts.begin(), starts.end()));
  const Time last_step = instance.max_deadline() - 1;
  return edf_feasible_capacity(instance, first_step, last_step,
                               capacity_at);
}

std::optional<std::vector<Time>> min_calibrations_unlimited_machines(
    const DeadlineInstance& instance, int max_calibrations) {
  if (instance.empty()) return std::vector<Time>{};
  const int cap =
      max_calibrations < 0 ? instance.size() : max_calibrations;
  std::vector<Time> candidates;
  for (Time s = instance.min_release() + 1 - instance.T();
       s < instance.max_deadline(); ++s) {
    candidates.push_back(s);
  }
  // DFS over multisets (two intervals may share a start on different
  // machines), iterative deepening on the count.
  std::vector<Time> chosen;
  auto search = [&](auto&& self, std::size_t from, int remaining) -> bool {
    if (remaining == 0) return edf_feasible_intervals(instance, chosen);
    for (std::size_t i = from; i < candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      if (self(self, i, remaining - 1)) return true;  // i again: multiset
      chosen.pop_back();
    }
    return false;
  };
  for (int k = 1; k <= cap; ++k) {
    chosen.clear();
    if (search(search, 0, k)) return chosen;
  }
  return std::nullopt;
}

}  // namespace calib

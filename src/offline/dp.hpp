// Offline dynamic program (paper Section 4): minimum total weighted flow
// time on one machine with a budget of K calibrations, unit jobs,
// distinct integer release times. Optimal; O(K n^3) per Theorem 4.7.
//
// Structure (Propositions 1 and 2):
//   * F(k, v) — optimum for jobs 1..v with k calibrations — splits the
//     schedule at critical jobs (Definition 4.4) into *groups* of
//     ceil(count / T) intervals whose last interval ends at r_v + 1
//     (Lemma 4.2: the last step of each interval runs a job at its
//     release).
//   * f(u, v, mu) — optimum for the jobs released in [r_u, r_v] with
//     rank above mu, packed into exactly ceil(count / T) intervals, all
//     full except possibly the last, which is pinned to
//     [r_v + 1 - T, r_v + 1). The recursion peels the rank-minimal
//     (lightest) job e: it runs at its release (in the interval's
//     at-release suffix), at the end of the busy prefix (Lemma 4.6's s),
//     or the group splits at a prefix whose size is a multiple of T.
//
// The solver also reconstructs a witness schedule, which the test suite
// validates and checks against the DP value — the DP can therefore never
// silently report an unachievable cost.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "util/budget.hpp"

namespace calib {

/// Sentinel for "no feasible schedule with this budget".
inline constexpr Cost kInfeasible = -1;

class OfflineDp {
 public:
  /// Requires P == 1 and distinct release times (apply
  /// Instance::normalized() first if needed).
  explicit OfflineDp(const Instance& instance);

  [[nodiscard]] const Instance& instance() const { return instance_; }

  /// Attach a cooperative budget (nullptr detaches; not owned). Charged
  /// one unit per newly computed DP state — the row boundaries of the
  /// O(K n³) recurrence — so BudgetExceeded cuts a runaway computation
  /// at a state boundary instead of leaving a thread hung.
  void set_budget(Budget* budget) { budget_ = budget; }

  /// Minimum total weighted flow with at most `budget` calibrations;
  /// kInfeasible if budget * T < n.
  [[nodiscard]] Cost min_flow(int budget);

  /// Minimum total weighted completion time (the paper's F(K, n)).
  [[nodiscard]] Cost min_completion(int budget);

  /// min_flow(k) for k = 0..k_max (index = budget).
  [[nodiscard]] std::vector<Cost> flow_curve(int k_max);

  /// An optimal schedule witnessing min_flow(budget); nullopt if
  /// infeasible. Validated against the instance before returning.
  [[nodiscard]] std::optional<Schedule> solve(int budget);

 private:
  // f-state key: (u, v, mu) packed; u, v in [1, n], mu in [0, n].
  [[nodiscard]] std::size_t f_key(int u, int v, int mu) const;
  Cost f(int u, int v, int mu);
  Cost f_compute(int u, int v, int mu);
  Cost F(int k, int v);

  // Reconstruction helpers (re-derive the argmins; the tables are small
  // compared to re-walking them once).
  void rebuild_group(int u, int v, int mu, Schedule& schedule,
                     std::vector<bool>& calibrated_anchor);

  // Definition 4.5 pieces for state (u, v, mu).
  struct StateInfo {
    std::vector<int> members;  // indices in [u, v] with rank > mu, ascending
    std::vector<int> psi;      // prefix-multiple-of-T members below v
    int e = 0;                 // rank-minimal member
    Time b = 0;                // last interval start r_v + 1 - T
    Time s = -1;               // Lemma 4.6's s; -1 if no h in [0, T] works
  };
  [[nodiscard]] StateInfo analyze(int u, int v, int mu) const;

  Instance instance_;
  int n_ = 0;
  std::vector<Time> release_;   // 1-based
  std::vector<Weight> weight_;  // 1-based
  std::vector<int> rank_;       // 1-based; 1 = lightest (ties: latest
                                // release ranks first)
  // f-memo: dense cube for small n, hash map beyond (the cube would be
  // (n+1)^3 entries; past ~1 GiB the sparse reachable-state set wins).
  bool dense_memo_ = true;
  std::vector<Cost> f_memo_;
  std::unordered_map<std::size_t, Cost> f_memo_sparse_;
  std::vector<Cost> F_memo_;  // (k, v) table
  Budget* budget_ = nullptr;
};

/// One-call helper: optimal flow for `instance` with `budget`
/// calibrations (normalizes releases if needed).
Cost optimal_flow_with_budget(const Instance& instance, int budget);

}  // namespace calib

// Fixture: harness code reaching past the obs facades. The comment
// mention of MetricsRegistry here must NOT count — only code does.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace calib::harness {

// Naming the backing registry type is the violation, even by reference.
void poke(obs::MetricsRegistry& registry) {
  registry.counter("bad.direct").add();
}

// So is constructing a private collector instead of using tracer().
void collect() {
  obs::TraceCollector local;
  local.set_enabled(true);
}

}  // namespace calib::harness

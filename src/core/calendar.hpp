// Calendar: when each machine is calibrated.
//
// A calibration at time s on machine m makes the T time steps
// [s, s+T) of m *calibrated* (paper Section 2). Calibrations may
// overlap on a machine — legal but wasteful; each machine still runs at
// most one unit job per step. The paper's algorithms separate the hard
// decision (when to calibrate) from the easy one (which job to run,
// Observation 2.1); Calendar is the value that crosses that boundary.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace calib {

class Calendar {
 public:
  /// An empty calendar for `machines` machines with interval length T.
  Calendar(Time T, int machines);

  /// Observation 2.1 step 2: distribute a globally ordered list of
  /// calibration times over machines in round-robin order.
  static Calendar round_robin(std::vector<Time> global_starts, Time T,
                              int machines);

  [[nodiscard]] Time T() const { return T_; }
  [[nodiscard]] int machines() const {
    return static_cast<int>(starts_.size());
  }

  void add(MachineId m, Time start);

  /// Total number of calibrations across all machines.
  [[nodiscard]] int count() const;

  /// Calibration starts of machine m, ascending.
  [[nodiscard]] const std::vector<Time>& starts(MachineId m) const;

  /// All calibration starts across machines, ascending (with multiplicity).
  [[nodiscard]] std::vector<Time> all_starts() const;

  /// Is time step t calibrated on machine m?
  [[nodiscard]] bool covers(MachineId m, Time t) const;

  /// Earliest calibrated step >= t on machine m, or kUnscheduled.
  [[nodiscard]] Time next_calibrated(MachineId m, Time t) const;

  /// Union of calibrated steps of machine m as sorted maximal [lo, hi)
  /// runs (overlaps merged).
  struct Run {
    Time begin;
    Time end;  // exclusive
    friend bool operator==(const Run&, const Run&) = default;
  };
  [[nodiscard]] std::vector<Run> runs(MachineId m) const;

  /// All calibrated (time, machine) slots in time order (machine index
  /// as tie-break). Size is at most count() * T.
  struct Slot {
    Time time;
    MachineId machine;
    friend bool operator==(const Slot&, const Slot&) = default;
  };
  [[nodiscard]] std::vector<Slot> slots() const;

  /// End of the last calibrated step + 1, or 0 if empty.
  [[nodiscard]] Time horizon() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Calendar&, const Calendar&) = default;

 private:
  Time T_;
  std::vector<std::vector<Time>> starts_;  // per machine, sorted
};

}  // namespace calib

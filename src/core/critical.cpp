#include "core/critical.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace calib {

bool is_critical(const Instance& instance, const Schedule& schedule,
                 JobId j) {
  CALIB_CHECK(instance.machines() == 1);
  const Placement& p = schedule.placement(j);
  if (p.start != instance.job(j).release) return false;
  for (JobId other = 0; other < instance.size(); ++other) {
    if (other == j) continue;
    if (instance.job(other).release < instance.job(j).release &&
        schedule.placement(other).start >= instance.job(j).release) {
      return false;
    }
  }
  return true;
}

std::vector<JobId> critical_jobs(const Instance& instance,
                                 const Schedule& schedule) {
  std::vector<JobId> result;
  for (JobId j = 0; j < instance.size(); ++j) {
    if (is_critical(instance, schedule, j)) result.push_back(j);
  }
  return result;
}

bool satisfies_lemma_4_1(const Instance& instance, const Schedule& schedule) {
  CALIB_CHECK(instance.machines() == 1);
  std::map<Time, JobId> by_start;
  for (JobId j = 0; j < instance.size(); ++j) {
    by_start[schedule.placement(j).start] = j;
  }
  const auto runs = schedule.calendar().runs(0);
  for (const auto& [start, j] : by_start) {
    if (start == instance.job(j).release) continue;
    // Find the maximal calibrated run containing this start; demand no
    // idle step between the run's begin and the job's start.
    const auto run = std::find_if(runs.begin(), runs.end(), [&](const auto& r) {
      return r.begin <= start && start < r.end;
    });
    CALIB_CHECK(run != runs.end());
    // The lemma is phrased per interval; for maximal runs the no-idle
    // requirement from the run's begin is the conservative reading.
    for (Time t = run->begin; t < start; ++t) {
      if (!by_start.contains(t)) return false;
    }
  }
  return true;
}

bool satisfies_lemma_4_2(const Instance& instance, const Schedule& schedule) {
  CALIB_CHECK(instance.machines() == 1);
  std::map<Time, JobId> by_start;
  for (JobId j = 0; j < instance.size(); ++j) {
    by_start[schedule.placement(j).start] = j;
  }
  for (const auto& run : schedule.calendar().runs(0)) {
    const auto it = by_start.find(run.end - 1);
    if (it == by_start.end()) return false;
    if (instance.job(it->second).release != run.end - 1) return false;
  }
  return true;
}

}  // namespace calib

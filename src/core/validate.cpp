#include "core/validate.hpp"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/calendar.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {
namespace {

std::string job_tag(JobId j) { return "job " + std::to_string(j); }

}  // namespace

ValidationReport validate_schedule(const Instance& instance,
                                   const Schedule& schedule, Cost G) {
  ValidationReport report;
  const auto fail = [&](std::string why) {
    report.violation = std::move(why);
    report.objective = 0;
    report.flow = 0;
    report.calibrations = 0;
    return report;
  };

  if (G < 1) return fail("G must be >= 1, got " + std::to_string(G));
  if (schedule.size() != instance.size()) {
    return fail("schedule holds " + std::to_string(schedule.size()) +
                " placements, instance has " +
                std::to_string(instance.size()) + " jobs");
  }
  const Calendar& calendar = schedule.calendar();
  if (calendar.T() != instance.T()) {
    return fail("calendar T=" + std::to_string(calendar.T()) +
                " != instance T=" + std::to_string(instance.T()));
  }
  if (calendar.machines() != instance.machines()) {
    return fail("calendar has " + std::to_string(calendar.machines()) +
                " machines, instance wants " +
                std::to_string(instance.machines()));
  }

  // Footnote-1 normalization: at most P jobs may share a release time.
  // The generators and solvers all run on normalized instances, so a
  // violation here means the cell solved something the paper's model
  // (and the DP optimum it may be compared against) does not describe.
  std::map<Time, int> per_release;
  for (const Job& job : instance.jobs()) {
    if (job.weight < 1) {
      return fail("instance job has weight " + std::to_string(job.weight) +
                  " < 1");
    }
    if (++per_release[job.release] > instance.machines()) {
      return fail(std::to_string(per_release[job.release]) +
                  " jobs released at t=" + std::to_string(job.release) +
                  " with only " + std::to_string(instance.machines()) +
                  " machine(s): release-collision normalization violated");
    }
  }

  // Per-job feasibility, recomputing the weighted flow as we go. The
  // accumulation deliberately mirrors the *definition* (Section 2), not
  // Schedule::weighted_flow's code path.
  std::set<std::pair<MachineId, Time>> occupied;
  Cost flow = 0;
  for (JobId j = 0; j < instance.size(); ++j) {
    const Placement& p = schedule.placement(j);
    const Job& job = instance.job(j);
    if (p.start == kUnscheduled) return fail(job_tag(j) + " is unscheduled");
    if (p.machine < 0 || p.machine >= calendar.machines()) {
      return fail(job_tag(j) + " runs on invalid machine " +
                  std::to_string(p.machine));
    }
    if (p.start < job.release) {
      return fail(job_tag(j) + " starts at t=" + std::to_string(p.start) +
                  " before its release r=" + std::to_string(job.release));
    }
    if (!calendar.covers(p.machine, p.start)) {
      return fail(job_tag(j) + " runs at uncalibrated step t=" +
                  std::to_string(p.start) + " on machine " +
                  std::to_string(p.machine));
    }
    if (!occupied.emplace(p.machine, p.start).second) {
      return fail(job_tag(j) + " collides at (machine " +
                  std::to_string(p.machine) +
                  ", t=" + std::to_string(p.start) + ")");
    }
    flow += job.weight * (p.start + 1 - job.release);
  }

  // Calibration spend recomputed by walking every machine's start list
  // (each start costs G even when intervals overlap — overlap is legal
  // but paid for, exactly as Calendar::count() defines the model).
  int calibrations = 0;
  for (MachineId m = 0; m < calendar.machines(); ++m) {
    Time previous = kUnscheduled;
    for (const Time start : calendar.starts(m)) {
      if (previous != kUnscheduled && start < previous) {
        return fail("calendar starts out of order on machine " +
                    std::to_string(m));
      }
      previous = start;
      ++calibrations;
    }
  }

  report.flow = flow;
  report.calibrations = calibrations;
  report.objective = G * calibrations + flow;
  return report;
}

}  // namespace calib

#include "online/randomized.hpp"

#include <cmath>

#include "util/check.hpp"

namespace calib {

void RandomizedSkiRental::draw_threshold() {
  // Inverse-CDF sample of the density e^x / (e - 1) on [0, 1]:
  // F(x) = (e^x - 1)/(e - 1)  =>  x = ln(1 + u (e - 1)).
  const double u = prng_.uniform01();
  theta_ = std::log(1.0 + u * (std::exp(1.0) - 1.0));
  if (theta_ <= 0.0) theta_ = 1e-9;  // guard the u == 0 corner
}

void RandomizedSkiRental::decide(DriverHandle& handle) {
  CALIB_CHECK_MSG(handle.machines() == 1,
                  "RandomizedSkiRental is a single-machine policy");
  const Time t = handle.now();
  if (handle.calibrated(0, t)) return;
  if (handle.waiting_empty()) return;

  const Cost G = handle.G();
  const Time T = handle.T();
  const Cost f = handle.queue_flow_from(t + 1, QueueOrder::kFifo);
  const auto queue_size = static_cast<Cost>(handle.waiting_count());
  const bool count_trigger = queue_size * T >= G;
  const bool flow_trigger =
      static_cast<double>(f) >= theta_ * static_cast<double>(G);
  if (count_trigger || flow_trigger) {
    handle.calibrate();
    draw_threshold();  // fresh randomness for the next epoch
  }
}

}  // namespace calib

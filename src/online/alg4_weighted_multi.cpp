#include "online/alg4_weighted_multi.hpp"

namespace calib {

void Alg4WeightedMulti::decide(DriverHandle& handle) {
  if (handle.waiting_empty()) return;
  const Time t = handle.now();
  const Cost G = handle.G();
  const Time T = handle.T();
  // Only calibrate when no already-calibrated machine is about to free
  // up this step (the pre-assignment has already run, so any remaining
  // queue pressure is genuine).
  const Cost f = handle.queue_flow_from(t + 1, QueueOrder::kHeaviestFirst);
  const Weight queue_weight = handle.waiting_weight();
  const auto queue_size = static_cast<Time>(handle.waiting_count());
  if (queue_weight * T >= G || queue_size >= T || f >= G) {
    handle.calibrate();
  }
}

}  // namespace calib

#include "offline/dp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace calib {
namespace {

// Internal sentinels: costs are nonnegative, so negatives are free.
constexpr Cost kUnknown = -2;
constexpr Cost kInf = std::numeric_limits<Cost>::max() / 4;

Cost saturating_add(Cost a, Cost b) {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

// States expanded (memo fills, not lookups) — the DP's true work unit,
// mirroring what the cooperative budget charges.
const obs::Counter& f_states_counter() {
  static const obs::Counter counter = obs::metrics().counter("dp.f_states");
  return counter;
}

const obs::Counter& F_states_counter() {
  static const obs::Counter counter = obs::metrics().counter("dp.F_states");
  return counter;
}

}  // namespace

OfflineDp::OfflineDp(const Instance& instance) : instance_(instance) {
  CALIB_CHECK_MSG(instance_.machines() == 1,
                  "the Section 4 DP is a single-machine algorithm");
  n_ = instance_.size();
  release_.assign(static_cast<std::size_t>(n_) + 1, 0);
  weight_.assign(static_cast<std::size_t>(n_) + 1, 0);
  rank_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int j = 1; j <= n_; ++j) {
    release_[static_cast<std::size_t>(j)] =
        instance_.job(static_cast<JobId>(j - 1)).release;
    weight_[static_cast<std::size_t>(j)] =
        instance_.job(static_cast<JobId>(j - 1)).weight;
    if (j > 1) {
      CALIB_CHECK_MSG(
          release_[static_cast<std::size_t>(j)] >
              release_[static_cast<std::size_t>(j - 1)],
          "the DP requires distinct release times; call normalized()");
    }
  }
  // Ranks: ascending weight, ties broken by *latest* release first
  // (Definition preceding 4.5), so rank 1 is the lightest job and among
  // equal weights the later-released one.
  std::vector<int> order(static_cast<std::size_t>(n_));
  std::iota(order.begin(), order.end(), 1);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (weight_[static_cast<std::size_t>(a)] !=
        weight_[static_cast<std::size_t>(b)])
      return weight_[static_cast<std::size_t>(a)] <
             weight_[static_cast<std::size_t>(b)];
    return release_[static_cast<std::size_t>(a)] >
           release_[static_cast<std::size_t>(b)];
  });
  for (int pos = 0; pos < n_; ++pos) {
    rank_[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] =
        pos + 1;
  }
  const auto states = static_cast<std::size_t>(n_ + 1);
  const std::size_t cube = states * states * states;
  dense_memo_ = cube <= (std::size_t{1} << 27);  // ~1 GiB of Cost
  if (dense_memo_) {
    f_memo_.assign(cube, kUnknown);
  } else {
    f_memo_sparse_.reserve(1 << 20);
  }
  F_memo_.assign(states * states, kUnknown);
}

std::size_t OfflineDp::f_key(int u, int v, int mu) const {
  const auto states = static_cast<std::size_t>(n_ + 1);
  return (static_cast<std::size_t>(u) * states + static_cast<std::size_t>(v)) *
             states +
         static_cast<std::size_t>(mu);
}

OfflineDp::StateInfo OfflineDp::analyze(int u, int v, int mu) const {
  StateInfo info;
  info.b = release_[static_cast<std::size_t>(v)] + 1 - instance_.T();
  int best_rank = n_ + 1;
  for (int j = u; j <= v; ++j) {
    if (rank_[static_cast<std::size_t>(j)] <= mu) continue;
    info.members.push_back(j);
    if (rank_[static_cast<std::size_t>(j)] < best_rank) {
      best_rank = rank_[static_cast<std::size_t>(j)];
      info.e = j;
    }
    // Psi: members strictly below v whose prefix count is a multiple
    // of T (Definition 4.5).
    if (j < v &&
        static_cast<Time>(info.members.size()) % instance_.T() == 0) {
      info.psi.push_back(j);
    }
  }
  // Lemma 4.6's s: smallest h with h == #{members released before b+h}
  // (mod T). Scanning h in [0, T] suffices: beyond T the busy prefix
  // would exceed the interval.
  const Time T = instance_.T();
  for (Time h = 0; h <= T; ++h) {
    Time count = 0;
    for (const int j : info.members) {
      if (release_[static_cast<std::size_t>(j)] < info.b + h) ++count;
    }
    if (((h - count) % T + T) % T == 0) {
      info.s = h;
      break;
    }
  }
  return info;
}

Cost OfflineDp::f(int u, int v, int mu) {
  const std::size_t key = f_key(u, v, mu);
  if (dense_memo_) {
    const Cost cached = f_memo_[key];
    if (cached != kUnknown) return cached;
  } else {
    const auto it = f_memo_sparse_.find(key);
    if (it != f_memo_sparse_.end()) return it->second;
  }
  const Cost result = f_compute(u, v, mu);
  if (dense_memo_) {
    f_memo_[key] = result;
  } else {
    f_memo_sparse_[key] = result;
  }
  return result;
}

Cost OfflineDp::f_compute(int u, int v, int mu) {
  if (budget_ != nullptr) budget_->charge();
  f_states_counter().add();
  const StateInfo info = analyze(u, v, mu);
  if (info.members.empty()) return 0;
  // Proposition 2's infeasibility guard: a multiple-of-T prefix whose
  // last job is released at or after the pinned interval's start cannot
  // be packed into full earlier intervals.
  if (!info.psi.empty() &&
      info.b <= release_[static_cast<std::size_t>(info.psi.back())]) {
    return kInf;
  }

  Cost best = kInf;
  const Weight we = weight_[static_cast<std::size_t>(info.e)];
  const Time re = release_[static_cast<std::size_t>(info.e)];
  if (info.s >= 0) {
    const Cost sub = f(u, v, rank_[static_cast<std::size_t>(info.e)]);
    if (re >= info.b + info.s) {
      // e runs at its release, inside the at-release suffix.
      best = std::min(best, saturating_add(sub, we * (re + 1)));
    } else if (info.s > 0) {
      // e takes the last slot of the busy prefix, completing at b + s.
      best = std::min(best, saturating_add(sub, we * (info.b + info.s)));
    }
  }
  for (const int j : info.psi) {
    if (release_[static_cast<std::size_t>(j)] < re) continue;
    best = std::min(
        best, saturating_add(f(u, j, mu), f(j + 1, v, mu)));
  }
  return best;
}

Cost OfflineDp::F(int k, int v) {
  if (v == 0) return 0;
  if (k <= 0) return kInf;
  if (static_cast<Cost>(k) * instance_.T() < v) return kInf;
  const auto states = static_cast<std::size_t>(n_ + 1);
  Cost& memo =
      F_memo_[static_cast<std::size_t>(k) * states + static_cast<std::size_t>(v)];
  if (memo != kUnknown) return memo;
  if (budget_ != nullptr) budget_->charge();
  F_states_counter().add();
  memo = kInf;
  const Time T = instance_.T();
  Cost best = kInf;
  for (int u = 1; u <= v; ++u) {
    const int need = static_cast<int>((v - u + 1 + T - 1) / T);
    if (need > k) continue;
    best = std::min(best,
                    saturating_add(F(k - need, u - 1), f(u, v, 0)));
  }
  return memo = best;
}

Cost OfflineDp::min_completion(int budget) {
  if (n_ == 0) return 0;
  budget = std::clamp(budget, 0, n_);
  const Cost value = F(budget, n_);
  return value >= kInf ? kInfeasible : value;
}

Cost OfflineDp::min_flow(int budget) {
  const Cost completion = min_completion(budget);
  if (completion == kInfeasible) return kInfeasible;
  Cost release_weight = 0;
  for (int j = 1; j <= n_; ++j) {
    release_weight += weight_[static_cast<std::size_t>(j)] *
                      release_[static_cast<std::size_t>(j)];
  }
  return completion - release_weight;
}

std::vector<Cost> OfflineDp::flow_curve(int k_max) {
  static const obs::Histogram per_k =
      obs::metrics().histogram("dp.curve_k_us");
  static const obs::Histogram curve_len =
      obs::metrics().histogram("dp.curve_len");
  obs::ScopedSpan span("dp.flow_curve", "dp");
  span.arg("jobs", std::to_string(n_));
  span.arg("k_max", std::to_string(k_max));
  std::vector<Cost> curve;
  curve.reserve(static_cast<std::size_t>(k_max) + 1);
  for (int k = 0; k <= k_max; ++k) {
    // Per-k inner-loop time: because the memo persists across k, this
    // shows where along the budget axis the DP actually burns time.
    const std::uint64_t t0 = obs::now_ns();
    curve.push_back(min_flow(k));
    per_k.record((obs::now_ns() - t0) / 1000);
  }
  curve_len.record(static_cast<std::uint64_t>(k_max) + 1);
  return curve;
}

void OfflineDp::rebuild_group(int u, int v, int mu, Schedule& schedule,
                              std::vector<bool>& calibrated_anchor) {
  const Cost value = f(u, v, mu);
  CALIB_CHECK(value < kInf);
  const StateInfo info = analyze(u, v, mu);
  if (info.members.empty()) return;

  const Weight we = weight_[static_cast<std::size_t>(info.e)];
  const Time re = release_[static_cast<std::size_t>(info.e)];
  auto ensure_calibration = [&] {
    if (!calibrated_anchor[static_cast<std::size_t>(v)]) {
      schedule.calendar().add(0, info.b);
      calibrated_anchor[static_cast<std::size_t>(v)] = true;
    }
  };

  if (info.s >= 0) {
    const Cost sub = f(u, v, rank_[static_cast<std::size_t>(info.e)]);
    if (re >= info.b + info.s &&
        value == saturating_add(sub, we * (re + 1))) {
      ensure_calibration();
      schedule.place(static_cast<JobId>(info.e - 1), 0, re);
      rebuild_group(u, v, rank_[static_cast<std::size_t>(info.e)], schedule,
                    calibrated_anchor);
      return;
    }
    if (re < info.b + info.s && info.s > 0 &&
        value == saturating_add(sub, we * (info.b + info.s))) {
      ensure_calibration();
      schedule.place(static_cast<JobId>(info.e - 1), 0, info.b + info.s - 1);
      rebuild_group(u, v, rank_[static_cast<std::size_t>(info.e)], schedule,
                    calibrated_anchor);
      return;
    }
  }
  for (const int j : info.psi) {
    if (release_[static_cast<std::size_t>(j)] < re) continue;
    if (value == saturating_add(f(u, j, mu), f(j + 1, v, mu))) {
      rebuild_group(u, j, mu, schedule, calibrated_anchor);
      rebuild_group(j + 1, v, mu, schedule, calibrated_anchor);
      return;
    }
  }
  CALIB_CHECK_MSG(false, "DP reconstruction found no option matching f("
                             << u << ',' << v << ',' << mu << ")=" << value);
}

std::optional<Schedule> OfflineDp::solve(int budget) {
  if (n_ == 0) return Schedule(Calendar(instance_.T(), 1), 0);
  budget = std::clamp(budget, 0, n_);
  if (F(budget, n_) >= kInf) return std::nullopt;

  Schedule schedule(Calendar(instance_.T(), 1), n_);
  std::vector<bool> calibrated_anchor(static_cast<std::size_t>(n_) + 1,
                                      false);
  int k = budget;
  int v = n_;
  const Time T = instance_.T();
  while (v > 0) {
    const Cost value = F(k, v);
    CALIB_CHECK(value < kInf);
    bool advanced = false;
    for (int u = 1; u <= v; ++u) {
      const int need = static_cast<int>((v - u + 1 + T - 1) / T);
      if (need > k) continue;
      if (value == saturating_add(F(k - need, u - 1), f(u, v, 0))) {
        rebuild_group(u, v, 0, schedule, calibrated_anchor);
        k -= need;
        v = u - 1;
        advanced = true;
        break;
      }
    }
    CALIB_CHECK_MSG(advanced, "DP reconstruction stuck at F(" << k << ','
                                                              << v << ')');
  }

  const auto error = schedule.validate(instance_);
  CALIB_CHECK_MSG(!error.has_value(),
                  "DP reconstructed an invalid schedule: " << *error);
  CALIB_CHECK_MSG(schedule.weighted_flow(instance_) == min_flow(budget),
                  "DP witness cost " << schedule.weighted_flow(instance_)
                                     << " != DP value " << min_flow(budget));
  CALIB_CHECK_MSG(schedule.calendar().count() <= budget,
                  "DP witness uses more calibrations than the budget");
  return schedule;
}

Cost optimal_flow_with_budget(const Instance& instance, int budget) {
  const Instance normalized =
      instance.releases_normalized() ? instance : instance.normalized();
  OfflineDp dp(normalized);
  return dp.min_flow(budget);
}

}  // namespace calib

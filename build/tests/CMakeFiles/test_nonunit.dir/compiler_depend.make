# Empty compiler generated dependencies file for test_nonunit.
# This may be replaced when dependencies are built.

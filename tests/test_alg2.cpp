// Algorithm 2 (Theorem 3.8): behavior, the Lemma 3.5 per-interval
// invariant, and the 12-competitive property against exact OPT.
#include <gtest/gtest.h>

#include "offline/budget_search.hpp"
#include "online/alg2_weighted.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Alg2, WeightTriggerFiresEarlyForHeavyJob) {
  // One heavy job: w * T >= G immediately.
  const Instance instance({Job{0, 10}}, 4);
  Alg2Weighted policy;
  const Schedule schedule = run_online(instance, /*G=*/20, policy);
  EXPECT_EQ(schedule.placement(0).start, 0);
}

TEST(Alg2, LightJobWaitsForFlow) {
  // w=1, T=2, G=12: weight trigger needs 6 weight, count trigger needs
  // 2 jobs; a single light job waits until f = t + 2 >= 12, t = 10.
  const Instance instance({Job{0, 1}}, 2);
  Alg2Weighted policy;
  const Schedule schedule = run_online(instance, /*G=*/12, policy);
  EXPECT_EQ(schedule.placement(0).start, 10);
}

TEST(Alg2, QueueFullTriggerAtTJobs) {
  // G huge so neither weight nor flow trigger fires; |Q| = T = 3 does.
  const Instance instance({Job{0, 1}, Job{1, 1}, Job{2, 1}}, 3);
  Alg2Weighted policy;
  const Schedule schedule = run_online(instance, /*G=*/1000, policy);
  EXPECT_EQ(schedule.calendar().starts(0).front(), 2);
}

TEST(Alg2, HeaviestScheduledFirstWithinInterval) {
  const Instance instance({Job{0, 1}, Job{1, 7}, Job{2, 3}}, 3);
  Alg2Weighted policy;
  const Schedule schedule = run_online(instance, /*G=*/9, policy);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  // Once calibrated, the w=7 job must not start after the w=3 job.
  EXPECT_LE(schedule.placement(1).start, schedule.placement(2).start);
  EXPECT_LE(schedule.placement(2).start, schedule.placement(0).start + 2);
}

// Lemma 3.5: per interval, the flow *beyond the unavoidable one step*
// is below 2G: sum_j w_j (t_j - r_j) < 2G.
void check_lemma_3_5(const Instance& instance, const Schedule& schedule,
                     Cost G) {
  for (const Time start : schedule.calendar().starts(0)) {
    Cost excess = 0;
    for (const JobId j : schedule.jobs_in_interval(0, start)) {
      excess += instance.job(j).weight *
                (schedule.placement(j).start - instance.job(j).release);
    }
    EXPECT_LT(excess, 2 * G)
        << instance.to_string() << " interval@" << start;
  }
}

struct Alg2SweepParams {
  int jobs;
  Time span;
  Time T;
  Cost G;
  WeightModel weights;
  int trials;
  std::uint64_t seed;
};

class Alg2Competitive : public ::testing::TestWithParam<Alg2SweepParams> {};

TEST_P(Alg2Competitive, WithinTwelveTimesOptAndLemma35Holds) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  double worst = 0.0;
  for (int trial = 0; trial < p.trials; ++trial) {
    const Instance instance = sparse_uniform_instance(
        p.jobs, p.span, p.T, 1, p.weights, 8, prng);
    Alg2Weighted policy;
    const Schedule schedule = run_online(instance, p.G, policy);
    check_lemma_3_5(instance, schedule, p.G);
    const Cost alg = schedule.online_cost(instance, p.G);
    const Cost opt = offline_online_optimum(instance, p.G).best_cost;
    worst = std::max(worst,
                     static_cast<double>(alg) / static_cast<double>(opt));
    EXPECT_LE(alg, 12 * opt) << instance.to_string() << " G=" << p.G;
  }
  RecordProperty("worst_ratio", std::to_string(worst));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Alg2Competitive,
    ::testing::Values(
        Alg2SweepParams{6, 20, 3, 6, WeightModel::kUniform, 25, 601},
        Alg2SweepParams{6, 20, 3, 15, WeightModel::kZipf, 25, 602},
        Alg2SweepParams{8, 30, 4, 10, WeightModel::kUniform, 20, 603},
        Alg2SweepParams{8, 16, 2, 24, WeightModel::kBimodal, 20, 604},
        Alg2SweepParams{10, 40, 5, 18, WeightModel::kUniform, 15, 605},
        Alg2SweepParams{10, 25, 6, 35, WeightModel::kZipf, 15, 606},
        Alg2SweepParams{12, 48, 4, 12, WeightModel::kBimodal, 10, 607},
        Alg2SweepParams{12, 36, 8, 60, WeightModel::kUniform, 10, 608}));

TEST(Alg2, LightestFirstAblationStillValid) {
  // The literal line-13 reading (DESIGN.md ambiguity #1) must still
  // produce correct schedules — just worse flow.
  Prng prng(609);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance instance = sparse_uniform_instance(
        8, 24, 4, 1, WeightModel::kUniform, 6, prng);
    Alg2Weighted heaviest(QueueOrder::kHeaviestFirst);
    Alg2Weighted lightest(QueueOrder::kLightestFirst);
    const Cost a = online_objective(instance, 10, heaviest);
    const Cost b = online_objective(instance, 10, lightest);
    EXPECT_GT(a, 0);
    EXPECT_GT(b, 0);
  }
}

TEST(Alg2, UnweightedInputBehavesLikeAlg1WithoutImmediates) {
  // On unit weights the weight trigger equals the count trigger, so the
  // schedule is valid and 12-competitiveness still holds.
  const Instance instance = trickle_instance(6, 1);
  Alg2Weighted policy;
  const Schedule schedule = run_online(instance, /*G=*/9, policy);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
}

}  // namespace
}  // namespace calib

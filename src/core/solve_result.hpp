// Uniform result of one solver run, online or offline.
//
// Every path that answers "what did solving this instance cost?" —
// run_online_result(), offline_optimum_result(), each sweep-engine cell —
// returns this one struct, so reports, tables, and JSONL rows never
// format online and offline runs through different code paths.
#pragma once

#include <string>

#include "core/types.hpp"

namespace calib {

class Instance;
class Schedule;

/// Outcome of one solve attempt. Everything that runs cells — the sweep
/// engine, journaled resumes, the CLI — speaks this vocabulary, so
/// degraded runs serialize through the same columns as healthy ones.
enum class RunStatus {
  kOk,       ///< solve completed; result fields are meaningful
  kError,    ///< solve threw; error message captured, result zeroed
  kTimeout,  ///< per-cell budget exceeded (deadline, step limit, watchdog)
  kSkipped,  ///< never attempted (run interrupted before this cell)
  kCrashed,  ///< sandboxed child died on a signal (segfault, abort, OOM)
  kInvalid,  ///< solve "succeeded" but the validation oracle rejected it
};

/// Stable lowercase names ("ok", "error", "timeout", "skipped",
/// "crashed", "invalid") used in JSONL/CSV rows and journal lines.
[[nodiscard]] const char* run_status_name(RunStatus status);

/// Inverse of run_status_name; throws std::runtime_error on unknown
/// names (journal corruption must not silently misparse).
[[nodiscard]] RunStatus parse_run_status(const std::string& name);

struct SolveResult {
  std::string solver;    ///< registry name / policy name / "offline-opt"
  Cost objective = 0;    ///< G * calibrations + weighted flow
  int calibrations = 0;  ///< intervals opened (== best_k offline)
  Cost flow = 0;         ///< total weighted flow time
  int best_k = -1;       ///< offline budget-search argmin; -1 when n/a
  double wall_ms = 0.0;  ///< wall-clock of the solve itself
};

/// Read a SolveResult off a realized schedule (the online paths).
[[nodiscard]] SolveResult summarize_schedule(const std::string& solver,
                                             const Instance& instance,
                                             const Schedule& schedule, Cost G,
                                             double wall_ms);

}  // namespace calib

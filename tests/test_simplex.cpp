// The from-scratch simplex solver: textbook cases, degeneracy,
// infeasibility/unboundedness detection, and randomized verification
// against feasibility of the reported optimum.
#include <gtest/gtest.h>

#include "lp/simplex.hpp"
#include "util/prng.hpp"

namespace calib {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (as min of -obj).
  LpProblem problem;
  const int x = problem.add_variable(-3.0);
  const int y = problem.add_variable(-5.0);
  problem.add_row({{{x, 1.0}}, Relation::kLe, 4.0});
  problem.add_row({{{y, 2.0}}, Relation::kLe, 12.0});
  problem.add_row({{{x, 3.0}, {y, 2.0}}, Relation::kLe, 18.0});
  const LpSolution solution = solve_lp(problem);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.value, -36.0, 1e-7);
  EXPECT_NEAR(solution.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(solution.x[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, HandlesGeAndEqRows) {
  // min x + y s.t. x + y >= 2, x = 0.5.
  LpProblem problem;
  const int x = problem.add_variable(1.0);
  const int y = problem.add_variable(1.0);
  problem.add_row({{{x, 1.0}, {y, 1.0}}, Relation::kGe, 2.0});
  problem.add_row({{{x, 1.0}}, Relation::kEq, 0.5});
  const LpSolution solution = solve_lp(problem);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.value, 2.0, 1e-7);
  EXPECT_NEAR(solution.x[static_cast<std::size_t>(y)], 1.5, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem problem;
  const int x = problem.add_variable(1.0);
  problem.add_row({{{x, 1.0}}, Relation::kGe, 3.0});
  problem.add_row({{{x, 1.0}}, Relation::kLe, 1.0});
  EXPECT_EQ(solve_lp(problem).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem problem;
  const int x = problem.add_variable(-1.0);  // min -x, x free upward
  problem.add_row({{{x, 1.0}}, Relation::kGe, 0.0});
  EXPECT_EQ(solve_lp(problem).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LpProblem problem;
  const int x = problem.add_variable(1.0);
  problem.add_row({{{x, -1.0}}, Relation::kLe, -3.0});
  const LpSolution solution = solve_lp(problem);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.value, 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-style degeneracy: many redundant constraints through the
  // same vertex. Bland's rule must terminate.
  LpProblem problem;
  const int x = problem.add_variable(-1.0);
  const int y = problem.add_variable(-1.0);
  for (int i = 0; i < 8; ++i) {
    problem.add_row({{{x, 1.0 + 0.1 * i}, {y, 1.0}}, Relation::kLe, 1.0});
  }
  problem.add_row({{{x, 1.0}}, Relation::kLe, 1.0});
  const LpSolution solution = solve_lp(problem);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_LE(solution.value, -1.0 + 1e-7);
}

TEST(Simplex, EmptyProblemIsZero) {
  LpProblem problem;
  problem.add_variable(2.0);
  const LpSolution solution = solve_lp(problem);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_EQ(solution.value, 0.0);
}

TEST(Simplex, EmptyProblemNegativeCostUnbounded) {
  LpProblem problem;
  problem.add_variable(-1.0);
  EXPECT_EQ(solve_lp(problem).status, LpStatus::kUnbounded);
}

TEST(Simplex, RedundantEqualityRowsAreTolerated) {
  LpProblem problem;
  const int x = problem.add_variable(1.0);
  problem.add_row({{{x, 1.0}}, Relation::kEq, 2.0});
  problem.add_row({{{x, 2.0}}, Relation::kEq, 4.0});  // same constraint
  const LpSolution solution = solve_lp(problem);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.value, 2.0, 1e-7);
}

// Strong duality, explicitly: for random covering LPs
// (min c^T x, A x >= b, x >= 0), the hand-built dual
// (max b^T y, A^T y <= c, y >= 0) must reach the same optimum.
TEST(Simplex, StrongDualityOnRandomCoveringLps) {
  Prng prng(1002);
  for (int trial = 0; trial < 25; ++trial) {
    const int nv = 3 + static_cast<int>(prng.uniform_int(0, 2));
    const int nr = 3 + static_cast<int>(prng.uniform_int(0, 2));
    std::vector<std::vector<double>> a(
        static_cast<std::size_t>(nr),
        std::vector<double>(static_cast<std::size_t>(nv)));
    std::vector<double> b(static_cast<std::size_t>(nr));
    std::vector<double> c(static_cast<std::size_t>(nv));
    for (auto& row : a) {
      for (auto& entry : row) {
        entry = static_cast<double>(prng.uniform_int(1, 5));
      }
    }
    for (auto& value : b) {
      value = static_cast<double>(prng.uniform_int(1, 9));
    }
    for (auto& value : c) {
      value = static_cast<double>(prng.uniform_int(1, 9));
    }

    LpProblem primal;
    for (int v = 0; v < nv; ++v) {
      primal.add_variable(c[static_cast<std::size_t>(v)]);
    }
    for (int r = 0; r < nr; ++r) {
      LpRow row;
      row.relation = Relation::kGe;
      row.rhs = b[static_cast<std::size_t>(r)];
      for (int v = 0; v < nv; ++v) {
        row.coefficients.emplace_back(
            v, a[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]);
      }
      primal.add_row(std::move(row));
    }

    LpProblem dual;  // min -b^T y s.t. A^T y <= c
    for (int r = 0; r < nr; ++r) {
      dual.add_variable(-b[static_cast<std::size_t>(r)]);
    }
    for (int v = 0; v < nv; ++v) {
      LpRow row;
      row.relation = Relation::kLe;
      row.rhs = c[static_cast<std::size_t>(v)];
      for (int r = 0; r < nr; ++r) {
        row.coefficients.emplace_back(
            r, a[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]);
      }
      dual.add_row(std::move(row));
    }

    const LpSolution primal_solution = solve_lp(primal);
    const LpSolution dual_solution = solve_lp(dual);
    ASSERT_EQ(primal_solution.status, LpStatus::kOptimal);
    ASSERT_EQ(dual_solution.status, LpStatus::kOptimal);
    EXPECT_NEAR(primal_solution.value, -dual_solution.value, 1e-6)
        << "trial " << trial;
  }
}

// Randomized property: the reported optimum is feasible and no random
// feasible point beats it.
TEST(Simplex, RandomizedOptimalitySpotCheck) {
  Prng prng(1001);
  for (int trial = 0; trial < 20; ++trial) {
    LpProblem problem;
    const int nv = 4;
    for (int v = 0; v < nv; ++v) {
      problem.add_variable(static_cast<double>(prng.uniform_int(1, 5)));
    }
    // Covering rows keep the problem feasible and bounded.
    for (int r = 0; r < 5; ++r) {
      LpRow row;
      row.relation = Relation::kGe;
      row.rhs = static_cast<double>(prng.uniform_int(1, 6));
      for (int v = 0; v < nv; ++v) {
        row.coefficients.emplace_back(
            v, static_cast<double>(prng.uniform_int(1, 4)));
      }
      problem.add_row(std::move(row));
    }
    const LpSolution solution = solve_lp(problem);
    ASSERT_EQ(solution.status, LpStatus::kOptimal);
    // Feasibility of the reported point.
    for (const LpRow& row : problem.rows) {
      double lhs = 0.0;
      for (const auto& [var, coef] : row.coefficients) {
        lhs += coef * solution.x[static_cast<std::size_t>(var)];
      }
      EXPECT_GE(lhs, row.rhs - 1e-6);
    }
    // No cheaper random feasible point (coarse dominance check).
    for (int probe = 0; probe < 50; ++probe) {
      std::vector<double> x(nv);
      for (auto& value : x) {
        value = prng.uniform01() * 6.0;
      }
      bool feasible = true;
      for (const LpRow& row : problem.rows) {
        double lhs = 0.0;
        for (const auto& [var, coef] : row.coefficients) {
          lhs += coef * x[static_cast<std::size_t>(var)];
        }
        if (lhs < row.rhs) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      double value = 0.0;
      for (int v = 0; v < nv; ++v) {
        value += problem.objective[static_cast<std::size_t>(v)] *
                 x[static_cast<std::size_t>(v)];
      }
      EXPECT_GE(value, solution.value - 1e-6);
    }
  }
}

}  // namespace
}  // namespace calib

// Fab line: a semiconductor test floor, the paper's motivating setting.
//
// A high-precision tester must be recalibrated every T time steps; lots
// arrive stochastically with priorities (weights) reflecting the order
// book. The example compares the paper's weighted online algorithm
// against the baselines and the exact offline optimum over a shift, and
// prints the cost breakdown (calibration spend vs weighted waiting).
//
//   $ ./fab_line [seed]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "offline/budget_search.hpp"
#include "online/alg2_weighted.hpp"
#include "online/baselines.hpp"
#include "online/driver.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace calib;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2017;
  Prng prng(seed);

  // One 8-hour shift at 1 step = 5 minutes; calibration holds for
  // ~2 hours (T = 25) and costs as much as 30 weighted wait-steps.
  PoissonConfig config;
  config.rate = 0.35;
  config.steps = 96;
  config.weights = WeightModel::kBimodal;  // mostly standard, some hot lots
  config.w_max = 8;
  const Instance shift = poisson_instance(config, /*T=*/25, /*machines=*/1,
                                          prng);
  const Cost G = 30;

  std::cout << "Fab shift: " << shift.size() << " lots, T=" << shift.T()
            << ", G=" << G << ", seed=" << seed << "\n\n";

  const BudgetSearchResult opt = offline_online_optimum(shift, G);

  Table table({"policy", "calibrations", "weighted flow", "objective",
               "vs offline OPT"});
  auto report = [&](OnlinePolicy& policy) {
    const Schedule schedule = run_online(shift, G, policy);
    const Cost cost = schedule.online_cost(shift, G);
    table.row()
        .add(policy.name())
        .add(static_cast<std::int64_t>(schedule.calendar().count()))
        .add(schedule.weighted_flow(shift))
        .add(cost)
        .add(static_cast<double>(cost) /
                 static_cast<double>(opt.best_cost),
             3);
  };
  Alg2Weighted alg2;
  EagerPolicy eager;
  SkiRentalPolicy ski;
  PeriodicPolicy periodic(shift.T());
  report(alg2);
  report(eager);
  report(ski);
  report(periodic);
  table.row()
      .add("offline OPT")
      .add(static_cast<std::int64_t>(opt.best_k))
      .add(opt.flow_curve[static_cast<std::size_t>(opt.best_k)])
      .add(opt.best_cost)
      .add(1.0, 3);
  table.print(std::cout);

  std::cout << "\nAlgorithm 2's guarantee (Theorem 3.8) is 12x; typical "
               "shifts land far below it.\n";
  return 0;
}

// Declarative sweep grids for the experiment harness.
//
// A SweepGrid names a cross-product — workload specs × solvers × G
// values × seed indices — without running anything; the SweepEngine
// (sweep.hpp) fans the cells across a thread pool. Keeping the grid a
// plain value type is what makes sweeps reproducible: the cell
// enumeration order and every per-cell PRNG stream are pure functions of
// the grid, never of thread scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib::harness {

/// One generator configuration. `kind` selects the family; the family
/// reads only the fields it uses (mirroring the generators' configs).
struct WorkloadSpec {
  std::string kind = "poisson";  ///< poisson | bursty | sparse | trickle
  Time T = 6;
  int machines = 1;
  WeightModel weights = WeightModel::kUnit;
  Weight w_max = 9;
  // poisson / bursty / sparse window:
  Time steps = 100;
  double rate = 0.3;  ///< poisson arrivals per step
  // bursty:
  double burst_probability = 0.05;
  Time burst_length = 8;
  double burst_rate = 1.0;
  // sparse:
  int jobs = 10;

  /// Generate the instance this spec + stream describes. Throws
  /// std::runtime_error on an unknown kind.
  [[nodiscard]] Instance instantiate(Prng& prng) const;

  /// Eager validation (unknown kind, nonpositive T/machines); throws
  /// std::runtime_error. Lets the SweepEngine reject a bad grid at
  /// construction instead of failing cell-by-cell at run time.
  void validate() const;

  /// Compact human/JSON label, e.g. "poisson(rate=0.3,steps=100,w=unit,
  /// T=6,P=1)". Deterministic; used as the workload column of every row.
  [[nodiscard]] std::string label() const;
};

/// The solver name that routes a cell through the Section-4 DP optimum
/// instead of an online policy.
inline constexpr const char* kOfflineSolver = "offline";

struct SweepGrid {
  std::vector<WorkloadSpec> workloads;
  /// Registry policy names and/or kOfflineSolver.
  std::vector<std::string> solvers;
  std::vector<Cost> G_values;
  int seeds = 1;                 ///< seed indices 0..seeds-1 per combination
  std::uint64_t base_seed = 1;   ///< root of every derived PRNG stream
  Time periodic_period = 5;      ///< plumbed to the "periodic" baseline
  bool compare_to_opt = false;   ///< add opt cost/k + ratio (needs P == 1)
  bool collect_trace = true;     ///< add peak queue + utilization columns
  std::size_t threads = 0;       ///< 0 = calib::global_pool()

  /// Optional bespoke per-run metric (the benches' ablation hooks),
  /// evaluated on online cells only; emitted as the "extra" column under
  /// `extra_metric_name`.
  std::string extra_metric_name;
  std::function<double(const Instance&, const Schedule&, Cost G)>
      extra_metric;

  [[nodiscard]] std::size_t cells() const {
    return workloads.size() * G_values.size() * solvers.size() *
           static_cast<std::size_t>(seeds);
  }
};

/// Coordinates of one cell in the grid's row-major enumeration
/// (workload, then G, then solver, then seed — so all solvers and G
/// values of a given (workload, seed) share one instance stream).
struct CellCoords {
  std::size_t index = 0;
  std::size_t workload = 0;
  std::size_t g = 0;
  std::size_t solver = 0;
  int seed = 0;
};

[[nodiscard]] CellCoords cell_coords(const SweepGrid& grid,
                                     std::size_t index);

/// The instance a given (workload, seed) cell sees — a pure function of
/// (grid.base_seed, workload index, seed index), independent of solver,
/// G, and thread count. Exposed so callers can re-materialize exactly
/// what the engine ran (cross-checks, failure reproduction).
[[nodiscard]] Instance materialize_instance(const SweepGrid& grid,
                                            std::size_t workload_index,
                                            int seed_index);

/// Deterministic 64-bit fingerprint of everything that shapes a sweep's
/// rows: workload labels, solvers, G values, seeds, base_seed, the
/// periodic period and the opt/trace/extra switches. Thread count and
/// other execution knobs are deliberately excluded — they never change
/// the rows. Used to key checkpoint journals: a journal written for one
/// grid must never be replayed into another.
[[nodiscard]] std::uint64_t grid_fingerprint(const SweepGrid& grid);

}  // namespace calib::harness

// Budget search: exhaustive min_k (G k + F(k)) vs the footnote-5 binary
// search, and agreement with brute force on the combined objective.
#include <gtest/gtest.h>

#include "offline/brute_force.hpp"
#include "offline/budget_search.hpp"
#include "offline/dp.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(BudgetSearch, MatchesBruteForceCombinedObjective) {
  Prng prng(901);
  for (int trial = 0; trial < 25; ++trial) {
    const Instance instance = sparse_uniform_instance(
        6, 14, 3, 1, WeightModel::kUniform, 5, prng);
    const Cost G = prng.uniform_int(1, 25);
    const BudgetSearchResult result = offline_online_optimum(instance, G);
    const OfflineSolution truth = brute_force_online_objective(instance, G);
    ASSERT_TRUE(truth.feasible());
    EXPECT_EQ(result.best_cost, truth.schedule->online_cost(instance, G))
        << instance.to_string() << " G=" << G;
  }
}

TEST(BudgetSearch, FlowCurveEndsAtAllJobsAtRelease) {
  // With k = n every job can run at its release: flow = total weight.
  Prng prng(902);
  const Instance instance = sparse_uniform_instance(
      7, 20, 3, 1, WeightModel::kUniform, 5, prng);
  const BudgetSearchResult result = offline_online_optimum(instance, 1);
  EXPECT_EQ(result.flow_curve.back(), instance.total_weight());
}

TEST(BudgetSearch, LargeGPrefersFewCalibrations) {
  const Instance instance({Job{0, 1}, Job{9, 1}, Job{18, 1}}, 3);
  const BudgetSearchResult cheap = offline_online_optimum(instance, 1);
  const BudgetSearchResult pricey = offline_online_optimum(instance, 500);
  EXPECT_GE(cheap.best_k, pricey.best_k);
  EXPECT_EQ(cheap.best_k, 3);   // calibrate per job
  EXPECT_EQ(pricey.best_k, 1);  // tolerate flow
}

// The footnote-5 claim, probed empirically: binary search over the
// marginal value agrees with the exhaustive scan. (This holds when
// G k + F(k) is unimodal; the sweep reports any counterexample.)
TEST(BudgetSearch, BinarySearchAgreesWithExhaustive) {
  Prng prng(903);
  int mismatches = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Instance instance = sparse_uniform_instance(
        7, 16, 3, 1, WeightModel::kUniform, 6, prng);
    const Cost G = prng.uniform_int(1, 30);
    const BudgetSearchResult a = offline_online_optimum(instance, G);
    const BudgetSearchResult b =
        offline_online_optimum_binary(instance, G);
    if (a.best_cost != b.best_cost) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0)
      << "G k + F(k) was not unimodal on " << mismatches
      << " instances; the footnote's binary search is then a heuristic";
}

TEST(BudgetSearch, NormalizesCollidingReleases) {
  const Instance instance({Job{0, 2}, Job{0, 1}, Job{4, 3}}, 3, 1);
  const BudgetSearchResult result = offline_online_optimum(instance, 5);
  EXPECT_GT(result.best_cost, 0);
  EXPECT_GE(result.best_k, 1);
}

TEST(BudgetSearch, RejectsEmptyInstance) {
  const Instance instance(std::vector<Job>{}, 3);
  EXPECT_DEATH(offline_online_optimum(instance, 5), "at least one job");
}

}  // namespace
}  // namespace calib

#include "harness/grid.hpp"

#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace calib::harness {
namespace {

// Stream labels: instance streams must not collide with policy streams
// (sweep.cpp) no matter the grid shape, so each family gets a high tag
// bit and the coordinates live in disjoint bit ranges.
constexpr std::uint64_t kInstanceStreamTag = 1ULL << 62;

std::string format_double(double value) {
  std::ostringstream os;
  os << value;  // shortest default formatting; labels only
  return os.str();
}

}  // namespace

Instance WorkloadSpec::instantiate(Prng& prng) const {
  if (kind == "poisson") {
    PoissonConfig config;
    config.rate = rate;
    config.steps = steps;
    config.weights = weights;
    config.w_max = w_max;
    return poisson_instance(config, T, machines, prng);
  }
  if (kind == "bursty") {
    BurstyConfig config;
    config.burst_probability = burst_probability;
    config.burst_length = burst_length;
    config.burst_rate = burst_rate;
    config.steps = steps;
    config.weights = weights;
    config.w_max = w_max;
    return bursty_instance(config, T, machines, prng);
  }
  if (kind == "sparse") {
    return sparse_uniform_instance(jobs, steps, T, machines, weights, w_max,
                                   prng);
  }
  if (kind == "trickle") {
    return trickle_instance(T, machines);
  }
  throw std::runtime_error("unknown workload kind: " + kind);
}

void WorkloadSpec::validate() const {
  if (kind != "poisson" && kind != "bursty" && kind != "sparse" &&
      kind != "trickle") {
    throw std::runtime_error("unknown workload kind: " + kind);
  }
  if (T < 1) throw std::runtime_error("workload: T must be >= 1");
  if (machines < 1) {
    throw std::runtime_error("workload: machines must be >= 1");
  }
}

std::string WorkloadSpec::label() const {
  std::ostringstream os;
  os << kind << '(';
  if (kind == "poisson") {
    os << "rate=" << format_double(rate) << ",steps=" << steps << ',';
  } else if (kind == "bursty") {
    os << "p=" << format_double(burst_probability) << ",len=" << burst_length
       << ",rate=" << format_double(burst_rate) << ",steps=" << steps << ',';
  } else if (kind == "sparse") {
    os << "jobs=" << jobs << ",span=" << steps << ',';
  }
  os << "w=" << weight_model_name(weights);
  if (weights != WeightModel::kUnit) os << ",wmax=" << w_max;
  os << ",T=" << T << ",P=" << machines << ')';
  return os.str();
}

CellCoords cell_coords(const SweepGrid& grid, std::size_t index) {
  CALIB_CHECK(index < grid.cells());
  const auto seeds = static_cast<std::size_t>(grid.seeds);
  CellCoords coords;
  coords.index = index;
  coords.seed = static_cast<int>(index % seeds);
  index /= seeds;
  coords.solver = index % grid.solvers.size();
  index /= grid.solvers.size();
  coords.g = index % grid.G_values.size();
  coords.workload = index / grid.G_values.size();
  return coords;
}

Instance materialize_instance(const SweepGrid& grid,
                              std::size_t workload_index, int seed_index) {
  CALIB_CHECK(workload_index < grid.workloads.size());
  CALIB_CHECK(seed_index >= 0 && seed_index < grid.seeds);
  // Fresh root per call: Prng::split advances the parent, so a shared
  // root would make the stream depend on evaluation order.
  Prng root(grid.base_seed);
  const std::uint64_t label = kInstanceStreamTag |
                              (static_cast<std::uint64_t>(workload_index)
                               << 32) |
                              static_cast<std::uint64_t>(seed_index);
  Prng stream = root.split(label);
  return grid.workloads[workload_index].instantiate(stream);
}

std::uint64_t grid_fingerprint(const SweepGrid& grid) {
  std::ostringstream os;
  os << "grid-v1|seeds=" << grid.seeds << "|base=" << grid.base_seed
     << "|period=" << grid.periodic_period << "|opt=" << grid.compare_to_opt
     << "|trace=" << grid.collect_trace
     << "|extra=" << grid.extra_metric_name;
  for (const WorkloadSpec& spec : grid.workloads) os << "|w:" << spec.label();
  for (const std::string& solver : grid.solvers) os << "|s:" << solver;
  for (const Cost G : grid.G_values) os << "|g:" << G;
  // FNV-1a: stable across platforms, and a collision only matters if two
  // *different* grids share a journal file — vanishingly unlikely and
  // caught downstream by the per-line cell coordinates.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : os.str()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace calib::harness

// Tiny command-line flag parser for the tools/ binaries.
//
// Syntax: --key=value or --key value; bare words are positional.
// Unknown flags are an error (typos should not be silently ignored in a
// tool that runs experiments).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace calib {

class Args {
 public:
  /// Parse argv[1..]; `known_flags` is the full set of accepted keys.
  /// Throws std::runtime_error on unknown flags or malformed input.
  Args(int argc, const char* const* argv,
       const std::set<std::string>& known_flags);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace calib

// calibsched — command-line front end for the library.
//
// Subcommands:
//   generate  --kind poisson|bursty|sparse --jobs N --steps N --rate R
//             --T N --machines P --weights unit|uniform|zipf|bimodal
//             --seed S [--out file]           -> instance CSV
//   solve     --in file --G N [--policy alg1|alg2|alg3|eager|ski|
//             periodic|random] [--offline] [--svg file]
//             -> cost report (and optional SVG of the schedule)
//   frontier  --in file [--kmax N]            -> the F(k) curve
//   lowerbound --in file --G N                -> Figure 1 LP bound
//
// Examples:
//   calibsched_cli generate --kind poisson --steps 100 --rate 0.3
//       --T 6 --seed 7 --out day.csv
//   calibsched_cli solve --in day.csv --G 15 --policy alg2 --offline
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/schedule_io.hpp"
#include "core/svg.hpp"
#include "lp/calib_lp.hpp"
#include "offline/budget_search.hpp"
#include "offline/dp.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/alg2_weighted.hpp"
#include "online/alg3_multi.hpp"
#include "online/baselines.hpp"
#include "online/driver.hpp"
#include "online/randomized.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

int usage() {
  std::cerr <<
      "usage: calibsched_cli <generate|solve|frontier|lowerbound> "
      "[flags]\n"
      "  generate   --kind poisson|bursty|sparse --T N [--jobs N]\n"
      "             [--steps N] [--rate R] [--machines P] [--weights W]\n"
      "             [--wmax N] [--seed S] [--out FILE]\n"
      "  solve      --in FILE --G N [--policy P] [--offline] [--svg FILE]\n"
      "             [--save-schedule FILE]\n"
      "  frontier   --in FILE [--kmax N]\n"
      "  lowerbound --in FILE --G N\n";
  return 2;
}

WeightModel parse_weights(const std::string& name) {
  if (name == "unit") return WeightModel::kUnit;
  if (name == "uniform") return WeightModel::kUniform;
  if (name == "zipf") return WeightModel::kZipf;
  if (name == "bimodal") return WeightModel::kBimodal;
  throw std::runtime_error("unknown weight model: " + name);
}

std::unique_ptr<OnlinePolicy> parse_policy(const std::string& name,
                                           std::uint64_t seed) {
  if (name == "alg1") return std::make_unique<Alg1Unweighted>();
  if (name == "alg2") return std::make_unique<Alg2Weighted>();
  if (name == "alg3") return std::make_unique<Alg3Multi>();
  if (name == "eager") return std::make_unique<EagerPolicy>();
  if (name == "ski") return std::make_unique<SkiRentalPolicy>();
  if (name == "periodic") return std::make_unique<PeriodicPolicy>(5);
  if (name == "random") return std::make_unique<RandomizedSkiRental>(seed);
  throw std::runtime_error("unknown policy: " + name);
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return Instance::load_csv(in);
}

int cmd_generate(const Args& args) {
  Prng prng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const Time T = args.get_int("T", 6);
  const int machines = static_cast<int>(args.get_int("machines", 1));
  const WeightModel weights = parse_weights(args.get("weights", "unit"));
  const Weight w_max = args.get_int("wmax", 9);
  const std::string kind = args.get("kind", "poisson");

  Instance instance({}, T, machines);
  if (kind == "poisson") {
    PoissonConfig config;
    config.rate = args.get_double("rate", 0.3);
    config.steps = args.get_int("steps", 100);
    config.weights = weights;
    config.w_max = w_max;
    instance = poisson_instance(config, T, machines, prng);
  } else if (kind == "bursty") {
    BurstyConfig config;
    config.steps = args.get_int("steps", 100);
    config.weights = weights;
    config.w_max = w_max;
    instance = bursty_instance(config, T, machines, prng);
  } else if (kind == "sparse") {
    const auto jobs = static_cast<int>(args.get_int("jobs", 10));
    instance = sparse_uniform_instance(
        jobs, args.get_int("steps", 3 * jobs), T, machines, weights, w_max,
        prng);
  } else {
    throw std::runtime_error("unknown kind: " + kind);
  }

  const std::string out = args.get("out", "");
  if (out.empty()) {
    instance.save_csv(std::cout);
  } else {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot write " + out);
    instance.save_csv(file);
    std::cout << "wrote " << instance.size() << " jobs to " << out << '\n';
  }
  return 0;
}

int cmd_solve(const Args& args) {
  const Instance instance = load_instance(args.get("in", ""));
  const Cost G = args.get_int("G", 10);
  const std::string policy_name = args.get("policy", "alg2");
  auto policy = parse_policy(policy_name,
                             static_cast<std::uint64_t>(
                                 args.get_int("seed", 1)));
  const Schedule schedule = run_online(instance, G, *policy);

  Table table({"solver", "calibrations", "weighted flow", "objective"});
  table.row()
      .add(policy->name())
      .add(static_cast<std::int64_t>(schedule.calendar().count()))
      .add(schedule.weighted_flow(instance))
      .add(schedule.online_cost(instance, G));
  if (args.has("offline") && instance.machines() == 1) {
    const BudgetSearchResult opt = offline_online_optimum(instance, G);
    table.row()
        .add("offline OPT")
        .add(static_cast<std::int64_t>(opt.best_k))
        .add(opt.flow_curve[static_cast<std::size_t>(opt.best_k)])
        .add(opt.best_cost);
  }
  table.print(std::cout);

  const std::string svg_path = args.get("svg", "");
  if (!svg_path.empty()) {
    std::ofstream svg(svg_path);
    if (!svg) throw std::runtime_error("cannot write " + svg_path);
    SvgOptions options;
    options.title = policy_name + " on " + args.get("in", "") +
                    " (G=" + std::to_string(G) + ")";
    svg << render_svg(instance, schedule, options);
    std::cout << "wrote " << svg_path << '\n';
  }
  const std::string schedule_path = args.get("save-schedule", "");
  if (!schedule_path.empty()) {
    std::ofstream out(schedule_path);
    if (!out) throw std::runtime_error("cannot write " + schedule_path);
    save_schedule_csv(schedule, out);
    std::cout << "wrote " << schedule_path << '\n';
  }
  return 0;
}

int cmd_frontier(const Args& args) {
  const Instance instance = load_instance(args.get("in", ""));
  OfflineDp dp(instance.releases_normalized() ? instance
                                              : instance.normalized());
  const auto k_max = static_cast<int>(
      args.get_int("kmax", dp.instance().size()));
  const auto curve = dp.flow_curve(k_max);
  Table table({"k", "optimal flow F(k)"});
  for (int k = 0; k <= k_max; ++k) {
    const Cost flow = curve[static_cast<std::size_t>(k)];
    table.row().add(static_cast<std::int64_t>(k)).add(
        flow == kInfeasible ? std::string("infeasible")
                            : std::to_string(flow));
  }
  table.print(std::cout);
  return 0;
}

int cmd_lowerbound(const Args& args) {
  const Instance instance = load_instance(args.get("in", ""));
  const Cost G = args.get_int("G", 10);
  std::cout << "Figure 1 LP lower bound on G*#calibrations + flow: "
            << lp_lower_bound(instance, G) << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc - 1, argv + 1,
                    {"kind", "jobs", "steps", "rate", "T", "machines",
                     "weights", "wmax", "seed", "out", "in", "G", "policy",
                     "offline", "svg", "save-schedule", "kmax"});
    if (command == "generate") return cmd_generate(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "frontier") return cmd_frontier(args);
    if (command == "lowerbound") return cmd_lowerbound(args);
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}

// Cross-module integration: full pipelines an application would run —
// generate a workload, run every online policy, solve offline exactly,
// certify with the LP, and check every theorem's inequality end to end.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/list_scheduler.hpp"
#include "core/transform.hpp"
#include "lp/calib_lp.hpp"
#include "offline/brute_force.hpp"
#include "offline/budget_search.hpp"
#include "offline/dp.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/alg2_weighted.hpp"
#include "online/alg3_multi.hpp"
#include "online/baselines.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Integration, FullPipelineUnweightedSingleMachine) {
  Prng prng(1301);
  PoissonConfig config;
  config.rate = 0.25;
  config.steps = 60;
  const Instance instance = poisson_instance(config, 4, 1, prng);
  const Cost G = 10;

  Alg1Unweighted alg1;
  EagerPolicy eager;
  SkiRentalPolicy ski;
  const Cost opt = offline_online_optimum(instance, G).best_cost;
  for (OnlinePolicy* policy :
       std::initializer_list<OnlinePolicy*>{&alg1, &eager, &ski}) {
    const Schedule schedule = run_online(instance, G, *policy);
    ASSERT_EQ(schedule.validate(instance), std::nullopt) << policy->name();
    EXPECT_GE(schedule.online_cost(instance, G), opt) << policy->name();
  }
  Alg1Unweighted fresh;
  EXPECT_LE(online_objective(instance, G, fresh), 3 * opt);
}

TEST(Integration, FullPipelineWeightedSingleMachine) {
  Prng prng(1302);
  const Instance instance = sparse_uniform_instance(
      9, 36, 4, 1, WeightModel::kZipf, 9, prng);
  const Cost G = 14;

  Alg2Weighted alg2;
  const Schedule online = run_online(instance, G, alg2);
  ASSERT_EQ(online.validate(instance), std::nullopt);

  const BudgetSearchResult opt = offline_online_optimum(instance, G);
  EXPECT_LE(online.online_cost(instance, G), 12 * opt.best_cost);

  // The DP witness at the optimal budget reproduces the optimal cost.
  OfflineDp dp(instance);
  const auto witness = dp.solve(opt.best_k);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->online_cost(instance, G), opt.best_cost);
}

TEST(Integration, OnlineCostsSandwichedBetweenLpAndThreeOpt) {
  Prng prng(1303);
  const Instance instance = sparse_uniform_instance(
      5, 10, 3, 1, WeightModel::kUnit, 1, prng);
  const Cost G = 6;
  const double lp = lp_lower_bound(instance, G);
  const Cost opt = offline_online_optimum(instance, G).best_cost;
  Alg1Unweighted policy;
  const Cost alg = online_objective(instance, G, policy);
  EXPECT_LE(lp, static_cast<double>(opt) + 1e-6);
  EXPECT_LE(opt, alg);
  EXPECT_LE(alg, 3 * opt);
}

TEST(Integration, MultiMachinePipelineWithReassignment) {
  Prng prng(1304);
  const Instance instance = sparse_uniform_instance(
      10, 20, 3, 2, WeightModel::kUnit, 1, prng);
  const Cost G = 6;
  Alg3Multi policy;
  const Schedule explicit_schedule = run_online(instance, G, policy);
  ASSERT_EQ(explicit_schedule.validate(instance), std::nullopt);
  const Schedule reassigned =
      reassign_observation_2_1(instance, explicit_schedule);
  EXPECT_LE(reassigned.online_cost(instance, G),
            explicit_schedule.online_cost(instance, G));
}

TEST(Integration, TransformOfOnlineScheduleKeepsGuarantees) {
  // Chain: online weighted run -> release-order transform -> still
  // valid, flow no worse, calibrations at most doubled.
  Prng prng(1305);
  const Instance instance = sparse_uniform_instance(
      8, 24, 3, 1, WeightModel::kUniform, 5, prng);
  Alg2Weighted policy;
  const Schedule online = run_online(instance, 9, policy);
  const Schedule ordered = to_release_order(instance, online);
  ASSERT_EQ(ordered.validate(instance), std::nullopt);
  EXPECT_TRUE(is_release_ordered(instance, ordered));
  EXPECT_LE(ordered.weighted_flow(instance),
            online.weighted_flow(instance));
  EXPECT_LE(ordered.calendar().count(), 2 * online.calendar().count());
}

TEST(Integration, CsvRoundTripPreservesSolverResults) {
  const Instance instance = regression_instance();
  std::stringstream buffer;
  instance.save_csv(buffer);
  const Instance loaded = Instance::load_csv(buffer);
  const Cost G = 7;
  EXPECT_EQ(offline_online_optimum(instance, G).best_cost,
            offline_online_optimum(loaded, G).best_cost);
}

TEST(Integration, DriverIncrementalFeedMatchesBatchRun) {
  // Feeding the driver job-by-job at release times must equal
  // run_online on the same instance.
  const Instance instance = regression_instance();
  const Cost G = 7;
  Alg2Weighted policy_a;
  const Cost batch = online_objective(instance, G, policy_a);

  Alg2Weighted policy_b;
  OnlineDriver driver(instance.T(), instance.machines(), G, policy_b);
  JobId next = 0;
  while (next < instance.size() || !driver.all_placed()) {
    while (next < instance.size() &&
           instance.job(next).release == driver.now()) {
      driver.add_job(instance.job(next).weight);
      ++next;
    }
    driver.step();
  }
  EXPECT_EQ(driver.online_cost(), batch);
}

TEST(Integration, ScalesToThousandJobInstanceOnline) {
  // Online policies are near-linear; make sure nothing degrades into
  // accidental quadratic blowups on realistic sizes.
  Prng prng(1306);
  PoissonConfig config;
  config.rate = 0.5;
  config.steps = 2000;
  config.weights = WeightModel::kUniform;
  config.w_max = 9;
  const Instance instance = poisson_instance(config, 8, 1, prng);
  ASSERT_GT(instance.size(), 800);
  Alg2Weighted policy;
  const Schedule schedule = run_online(instance, 25, policy);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
}

}  // namespace
}  // namespace calib

// E2 — Theorem 3.3: Algorithm 1 is 3-competitive (single machine,
// unweighted).
//
// Sweeps (G, T, load) over Poisson and bursty workloads, measuring the
// competitive ratio against the exact offline optimum per seed, and
// contrasts with the baselines. Expected shape: Algorithm 1's max ratio
// stays below 3 everywhere (mean typically 1.0-1.5); eager degrades as
// G/T grows, ski-rental degrades on trickles.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/baselines.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

Instance make_workload(int family, Time T, double rate, Prng& prng) {
  if (family == 0) {
    PoissonConfig config;
    config.rate = rate;
    config.steps = 120;
    return poisson_instance(config, T, 1, prng);
  }
  BurstyConfig config;
  config.burst_probability = rate / 4.0;
  config.burst_length = 6;
  config.steps = 120;
  return bursty_instance(config, T, 1, prng);
}

void BM_Alg1Ratio(benchmark::State& state) {
  const Cost G = state.range(0);
  const Time T = state.range(1);
  const int family = static_cast<int>(state.range(2));
  Prng prng(static_cast<std::uint64_t>(state.range(0) * 7919 + T));
  double worst = 0.0;
  for (auto _ : state) {
    const Instance instance = make_workload(family, T, 0.25, prng);
    Alg1Unweighted policy;
    worst = std::max(worst, benchutil::ratio_vs_opt(instance, G, policy));
  }
  state.counters["worst_ratio"] = worst;
  state.counters["bound"] = 3.0;
}

BENCHMARK(BM_Alg1Ratio)
    ->ArgsProduct({{4, 12, 36}, {3, 6, 12}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    const bool small = benchutil::small_mode();
    const int seeds = small ? 8 : 60;
    const std::vector<Cost> G_values = small ? std::vector<Cost>{4, 36}
                                             : std::vector<Cost>{4, 12, 36};
    const std::vector<Time> T_values = small ? std::vector<Time>{3, 6}
                                             : std::vector<Time>{3, 6, 12};
    std::cout << "\nE2 / Theorem 3.3 - Algorithm 1 competitive ratio vs "
                 "exact OPT (" << seeds << " seeds per cell, bound = 3):\n";
    Table table({"workload", "G", "T", "policy", "mean", "p95", "max"});
    for (const int family : {0, 1}) {
      for (const Cost G : G_values) {
        for (const Time T : T_values) {
          auto add_row = [&](const char* name, auto make_policy) {
            const Summary summary = benchutil::ensemble(
                seeds, [&](std::uint64_t seed) {
                  Prng prng(seed * 2654435761u + static_cast<std::uint64_t>(
                                                     G * 31 + T * 7 +
                                                     family));
                  const Instance instance =
                      make_workload(family, T, 0.25, prng);
                  auto policy = make_policy();
                  return benchutil::ratio_vs_opt(instance, G, policy);
                });
            table.row()
                .add(family == 0 ? "poisson" : "bursty")
                .add(G)
                .add(T)
                .add(name)
                .add(summary.mean(), 3)
                .add(summary.percentile(95), 3)
                .add(summary.max(), 3);
          };
          add_row("alg1", [] { return Alg1Unweighted(); });
          add_row("eager", [] { return EagerPolicy(); });
          add_row("ski-rental", [] { return SkiRentalPolicy(); });
        }
      }
    }
    table.print(std::cout);
  }
};
// Sidecar declared first so it is destroyed last: the snapshot then
// includes everything the table run recorded. Opt in by exporting
// CALIBSCHED_METRICS=<dir>.
const benchutil::MetricsSidecar sidecar("bench_alg1");  // NOLINT(cert-err58-cpp)
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

// Blocking client for the `calibsched serve` daemon, doubling as the
// chaos client the soak tests drive.
//
// The well-behaved path is a plain request/response loop: hello, then
// one kSubmitJob per job with the daemon's reply (kDecision or kError)
// printed as one JSONL line, then kGoodbye and the final kTenantStats.
// Chaos modes deliberately misbehave on the wire — flooding without
// reading, disconnecting mid-frame, sending garbage — so the daemon's
// robustness envelope (shed, poison, reap) can be exercised end to end
// from outside the process.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace calib::serve {

/// How the client misbehaves. kNone is the honest request/response
/// loop; every other mode violates the protocol or its pacing on
/// purpose.
enum class ChaosMode {
  kNone,
  kFlood,      ///< fire all submits without reading, then drain replies
  kDisconnect, ///< send half a submit frame, then close abruptly
  kCorrupt,    ///< send garbage bytes instead of a valid frame
  kSlow,       ///< sleep `chaos_param` ms between submits
};

/// Parse "", "flood", "disconnect-mid-frame", "corrupt-frame", "slow".
/// Throws std::runtime_error on anything else.
[[nodiscard]] ChaosMode parse_chaos_mode(const std::string& name);

struct ClientOptions {
  std::string socket_path;  ///< Unix path (preferred when non-empty)
  int tcp_port = -1;        ///< loopback TCP port (used if no socket path)
  HelloRequest hello;
  std::vector<SubmitJob> jobs;
  bool goodbye = true;  ///< send kGoodbye and wait for final stats
  ChaosMode chaos = ChaosMode::kNone;
  std::int64_t chaos_param = 0;  ///< kSlow: ms between submits
  std::ostream* out = nullptr;   ///< JSONL decision stream (optional)
  std::ostream* log = nullptr;   ///< human-readable errors (optional)
  double reply_timeout_ms = 10000.0;  ///< per-reply read deadline
};

/// What happened, for both the CLI exit code and the tests.
struct ClientReport {
  /// 0 = clean run, 1 = connect/startup failure, 2 = protocol failure
  /// (EOF, corrupt stream, reply timeout), 4 = at least one kError
  /// reply (sheds included) but the stream itself stayed well-formed.
  int exit_code = 0;
  std::uint64_t decisions = 0;
  std::uint64_t errors = 0;  ///< kError replies (RETRY_AFTER sheds included)
  std::uint64_t sheds = 0;   ///< the RETRY_AFTER subset of `errors`
  std::string last_error;
  bool got_stats = false;
  TenantStats final_stats;  ///< valid when got_stats
};

/// Run one client session to completion. Never throws; failures are
/// reported through ClientReport.
[[nodiscard]] ClientReport run_client(const ClientOptions& options);

}  // namespace calib::serve

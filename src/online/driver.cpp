#include "online/driver.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace calib {

// ---- DriverHandle forwarding ------------------------------------------

Time DriverHandle::now() const { return driver_.now(); }
Cost DriverHandle::G() const { return driver_.G(); }
Time DriverHandle::T() const { return driver_.T(); }
int DriverHandle::machines() const { return driver_.machines(); }
std::size_t DriverHandle::waiting_count() const {
  return driver_.waiting_count();
}
bool DriverHandle::waiting_empty() const { return driver_.waiting_empty(); }
Weight DriverHandle::waiting_weight() const {
  return driver_.waiting_weight();
}
JobId DriverHandle::waiting_at(std::size_t rank) const {
  return driver_.waiting_at(rank);
}
JobId DriverHandle::front(QueueOrder order) const {
  return driver_.front(order);
}
const Job& DriverHandle::job(JobId j) const {
  return driver_.jobs()[static_cast<std::size_t>(j)];
}
bool DriverHandle::arrived_now() const { return driver_.arrived_now(); }
const Calendar& DriverHandle::calendar() const { return driver_.calendar(); }
bool DriverHandle::calibrated(MachineId m, Time t) const {
  return driver_.covers(m, t);
}
Cost DriverHandle::queue_flow_from(Time start, QueueOrder order) const {
  return driver_.queue_flow_from(start, order);
}
Cost DriverHandle::last_interval_flow() const {
  return driver_.last_interval_flow();
}
MachineId DriverHandle::calibrate() { return driver_.calibrate_round_robin(); }
void DriverHandle::assign(JobId j, MachineId m, Time start) {
  driver_.assign(j, m, start);
}
Time DriverHandle::first_free_slot(MachineId m, Time from, Time to) const {
  return driver_.first_free_slot(m, from, to);
}

// ---- OnlineDriver ------------------------------------------------------

OnlineDriver::OnlineDriver(Time T, int machines, Cost G,
                           OnlinePolicy& policy)
    : policy_(policy), G_(G), calendar_(T, machines) {
  CALIB_CHECK(G >= 1);
  occupied_.resize(static_cast<std::size_t>(machines));
  coverage_.resize(static_cast<std::size_t>(machines));
  policy_.reset();
}

JobId OnlineDriver::add_job(Weight weight) {
  CALIB_CHECK(weight >= 1);
  const auto j = static_cast<JobId>(jobs_.size());
  jobs_.push_back(Job{now_, weight});
  placements_.emplace_back();
  pending_.insert(j, weight, now_);
  arrived_now_ = true;
  if (trace_ != nullptr) trace_->record_arrival(now_, j, weight);
  return j;
}

Time OnlineDriver::start_of(JobId j) const {
  CALIB_CHECK(j >= 0 && static_cast<std::size_t>(j) < placements_.size());
  return placements_[static_cast<std::size_t>(j)].start;
}

MachineId OnlineDriver::machine_of(JobId j) const {
  CALIB_CHECK(j >= 0 && static_cast<std::size_t>(j) < placements_.size());
  return placements_[static_cast<std::size_t>(j)].machine;
}

bool OnlineDriver::all_placed() const {
  return placed_count_ == jobs_.size();
}

std::size_t OnlineDriver::waiting_count() const { return pending_.size(); }

Weight OnlineDriver::waiting_weight() const {
  return pending_.total_weight();
}

JobId OnlineDriver::waiting_at(std::size_t rank) const {
  return pending_.at(rank);
}

JobId OnlineDriver::front(QueueOrder order) const {
  return pending_.first(order);
}

bool OnlineDriver::covers(MachineId m, Time t) const {
  const auto& runs = coverage_[static_cast<std::size_t>(m)];
  const auto it = std::upper_bound(
      runs.begin(), runs.end(), t,
      [](Time value, const CoverageRun& run) { return value < run.end; });
  return it != runs.end() && it->begin <= t;
}

Cost OnlineDriver::queue_flow_from(Time start, QueueOrder order) const {
  return pending_.queue_flow_from(start, order);
}

Cost OnlineDriver::interval_flow(MachineId m, Time start) const {
  const auto& occ = occupied_[static_cast<std::size_t>(m)];
  auto it = std::lower_bound(
      occ.begin(), occ.end(), start,
      [](const OccupiedSlot& slot, Time value) { return slot.start < value; });
  Cost flow = 0;
  for (; it != occ.end() && it->start < start + T(); ++it) {
    const Job& job = jobs_[static_cast<std::size_t>(it->job)];
    flow += job.weight * (it->start + 1 - job.release);
  }
  return flow;
}

Cost OnlineDriver::last_interval_flow() const {
  if (last_cal_start_ == kUnscheduled) return -1;
  return last_cal_flow_;
}

MachineId OnlineDriver::calibrate_round_robin() {
  static const obs::Counter calibrations =
      obs::metrics().counter("online.calibrations");
  calibrations.add();
  const MachineId m = next_rr_machine_;
  next_rr_machine_ = static_cast<MachineId>((next_rr_machine_ + 1) %
                                            calendar_.machines());
  calendar_.add(m, now_);
  // Calibrations only open at now_, so coverage merging happens at the
  // back and the run list stays sorted.
  auto& runs = coverage_[static_cast<std::size_t>(m)];
  if (!runs.empty() && now_ <= runs.back().end) {
    runs.back().end = std::max(runs.back().end, now_ + T());
  } else {
    runs.push_back(CoverageRun{now_, now_ + T()});
  }
  last_cal_start_ = now_;
  last_cal_machine_ = m;
  // Overlapping calibrations may already have booked slots in the new
  // interval; re-aggregate once per calibration (O(slots in interval)).
  last_cal_flow_ = interval_flow(m, now_);
  if (trace_ != nullptr) trace_->record_calibration(now_, m);
  return m;
}

bool OnlineDriver::occupied_at(MachineId m, Time t) const {
  const auto& occ = occupied_[static_cast<std::size_t>(m)];
  const auto it = std::lower_bound(
      occ.begin(), occ.end(), t,
      [](const OccupiedSlot& slot, Time value) { return slot.start < value; });
  return it != occ.end() && it->start == t;
}

void OnlineDriver::assign(JobId j, MachineId m, Time start) {
  CALIB_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
  CALIB_CHECK_MSG(placements_[static_cast<std::size_t>(j)].start ==
                      kUnscheduled,
                  "job " << j << " assigned twice");
  CALIB_CHECK_MSG(start >= jobs_[static_cast<std::size_t>(j)].release,
                  "job " << j << " assigned before release");
  CALIB_CHECK_MSG(start >= now_, "cannot assign into the past");
  CALIB_CHECK_MSG(covers(m, start),
                  "slot (m" << m << ", t=" << start << ") is not calibrated");
  auto& occ = occupied_[static_cast<std::size_t>(m)];
  auto it = std::lower_bound(
      occ.begin(), occ.end(), start,
      [](const OccupiedSlot& slot, Time value) { return slot.start < value; });
  CALIB_CHECK_MSG(it == occ.end() || it->start != start,
                  "slot (m" << m << ", t=" << start << ") already occupied");
  occ.insert(it, OccupiedSlot{start, j});
  placements_[static_cast<std::size_t>(j)] = Placement{start, m};
  const Job& job = jobs_[static_cast<std::size_t>(j)];
  ++placed_count_;
  placed_flow_ += job.weight * (start + 1 - job.release);
  if (last_cal_start_ != kUnscheduled && m == last_cal_machine_ &&
      start >= last_cal_start_ && start < last_cal_start_ + T()) {
    last_cal_flow_ += job.weight * (start + 1 - job.release);
  }
  pending_.erase(j);
  if (trace_ != nullptr) trace_->record_placement(now_, j, m, start);
}

Time OnlineDriver::first_free_slot(MachineId m, Time from, Time to) const {
  const auto& runs = coverage_[static_cast<std::size_t>(m)];
  const auto& occ = occupied_[static_cast<std::size_t>(m)];
  auto run = std::upper_bound(
      runs.begin(), runs.end(), from,
      [](Time value, const CoverageRun& r) { return value < r.end; });
  for (; run != runs.end() && run->begin < to; ++run) {
    Time t = std::max(from, run->begin);
    const Time end = std::min(run->end, to);
    auto it = std::lower_bound(occ.begin(), occ.end(), t,
                               [](const OccupiedSlot& slot, Time value) {
                                 return slot.start < value;
                               });
    // Booked slots are sorted: walk the contiguous booked prefix, and
    // the first hole (or the first step past the bookings) is free.
    while (t < end && it != occ.end() && it->start == t) {
      ++t;
      ++it;
    }
    if (t < end) return t;
  }
  return kUnscheduled;
}

void OnlineDriver::auto_assign() {
  // Observation 2.1 step 3: every calibrated, free machine takes the
  // best waiting job per the policy's order.
  for (MachineId m = 0; m < calendar_.machines() && !pending_.empty(); ++m) {
    if (!covers(m, now_)) continue;
    if (occupied_at(m, now_)) continue;
    assign(pending_.first(policy_.order()), m, now_);
  }
}

void OnlineDriver::step() {
  static const obs::Counter steps = obs::metrics().counter("online.steps");
  static const obs::Counter idle_steps =
      obs::metrics().counter("online.idle_steps");
  static const obs::Histogram decide_ns =
      obs::metrics().histogram("online.decide_ns");
  if (budget_ != nullptr) budget_->charge();
  steps.add();
  const std::size_t waiting_before = waiting_count();
  const int calibrations_before = calendar_.count();
  DriverHandle handle(*this);
  if (policy_.assign_before_decide()) auto_assign();
  const std::uint64_t decide_start = obs::now_ns();
  policy_.decide(handle);
  decide_ns.record(obs::now_ns() - decide_start);
  if (policy_.assign_after_decide()) auto_assign();
  // A step that had work queued but neither placed a job nor opened a
  // calibration is idle time the policy chose (or was forced) to eat.
  if (!waiting_empty() && waiting_count() == waiting_before &&
      calendar_.count() == calibrations_before) {
    idle_steps.add();
  }
  arrived_now_ = false;
  ++now_;
}

void OnlineDriver::advance_to(Time target) {
  static const obs::Counter advances =
      obs::metrics().counter("online.advances");
  static const obs::Counter skipped =
      obs::metrics().counter("online.skipped_steps");
  CALIB_CHECK_MSG(target >= now_, "advance_to cannot move time backwards");
  CALIB_CHECK_MSG(waiting_empty(),
                  "advance_to with waiting jobs would skip decision points");
  if (target == now_) return;
  // Budget accounting matches per-step ticking: one unit per skipped
  // step, so deterministic step budgets mean the same thing either way.
  if (budget_ != nullptr) {
    budget_->charge(static_cast<std::uint64_t>(target - now_));
  }
  advances.add();
  skipped.add(static_cast<std::uint64_t>(target - now_));
  arrived_now_ = false;
  now_ = target;
}

void OnlineDriver::drain() {
  // Any sane policy calibrates within O(G) steps of work existing; the
  // guard only trips on a policy that starves its queue.
  const Time guard =
      now_ + G_ + (static_cast<Time>(jobs_.size()) + 2) * (T() + 2) + 16;
  while (!all_placed()) {
    CALIB_CHECK_MSG(now_ <= guard, "policy failed to drain its queue (now="
                                       << now_ << ", guard=" << guard << ")");
    step();
  }
}

Instance OnlineDriver::realized_instance() const {
  return Instance(jobs_, T(), machines());
}

Schedule OnlineDriver::realized_schedule() const {
  // Instance() re-sorts jobs by (release, weight desc); map placements
  // through the same permutation so index i of the instance matches.
  std::vector<std::size_t> perm(jobs_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs_[a].release != jobs_[b].release)
                       return jobs_[a].release < jobs_[b].release;
                     return jobs_[a].weight > jobs_[b].weight;
                   });
  Schedule schedule(calendar_, static_cast<int>(jobs_.size()));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const Placement& p = placements_[perm[i]];
    if (p.start != kUnscheduled) {
      schedule.place(static_cast<JobId>(i), p.machine, p.start);
    }
  }
  return schedule;
}

Cost OnlineDriver::online_cost() const {
  CALIB_CHECK_MSG(placed_count_ == jobs_.size(),
                  "online_cost before drain(): "
                      << jobs_.size() - placed_count_ << " job(s) unplaced");
  return G_ * calendar_.count() + placed_flow_;
}

// ---- Entry points ------------------------------------------------------

Schedule run_online(const Instance& instance, Cost G, OnlinePolicy& policy,
                    Trace* trace, Budget* budget) {
  OnlineDriver driver(instance.T(), instance.machines(), G, policy);
  driver.set_trace(trace);
  driver.set_budget(budget);
  JobId next = 0;
  // Jobs release at nonnegative times; the driver clock starts at 0.
  while (next < instance.size() || !driver.all_placed()) {
    while (next < instance.size() &&
           instance.job(next).release == driver.now()) {
      driver.add_job(instance.job(next).weight);
      ++next;
    }
    if (next >= instance.size()) {
      driver.drain();
      break;
    }
    if (driver.waiting_empty()) {
      // Event-driven advance: an empty queue has no decision points
      // (decide() contract), so jump straight to the next release.
      driver.advance_to(instance.job(next).release);
    } else {
      driver.step();
    }
  }
  Schedule schedule = driver.realized_schedule();
  const auto error = schedule.validate(instance);
  CALIB_CHECK_MSG(!error.has_value(), "online run produced invalid schedule: "
                                          << *error);
  return schedule;
}

Cost online_objective(const Instance& instance, Cost G,
                      OnlinePolicy& policy) {
  return run_online(instance, G, policy).online_cost(instance, G);
}

SolveResult run_online_result(const Instance& instance, Cost G,
                              OnlinePolicy& policy, Trace* trace) {
  const Timer timer;
  const Schedule schedule = run_online(instance, G, policy, trace);
  return summarize_schedule(policy.name(), instance, schedule, G,
                            timer.millis());
}

}  // namespace calib

// Checked assertions that stay on in release builds.
//
// A theory reproduction lives or dies on invariants; the cost of a branch
// per check is negligible next to the cost of silently producing a wrong
// schedule. CALIB_CHECK aborts with a message; CALIB_CHECK_MSG lets the
// caller add context via stream syntax.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace calib::detail {

[[noreturn]] inline void check_failed(std::string_view expr,
                                      std::string_view file, int line,
                                      std::string_view msg) {
  std::cerr << "CHECK failed: " << expr << "\n  at " << file << ':' << line;
  if (!msg.empty()) std::cerr << "\n  " << msg;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace calib::detail

#define CALIB_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) [[unlikely]]                                             \
      ::calib::detail::check_failed(#cond, __FILE__, __LINE__, {});       \
  } while (false)

#define CALIB_CHECK_MSG(cond, ...)                                        \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      std::ostringstream calib_check_os_;                                 \
      calib_check_os_ << __VA_ARGS__;                                     \
      ::calib::detail::check_failed(#cond, __FILE__, __LINE__,            \
                                    calib_check_os_.str());               \
    }                                                                     \
  } while (false)

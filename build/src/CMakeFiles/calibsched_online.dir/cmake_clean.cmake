file(REMOVE_RECURSE
  "CMakeFiles/calibsched_online.dir/online/adversary.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/adversary.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/alg1_unweighted.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/alg1_unweighted.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/alg2_weighted.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/alg2_weighted.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/alg3_multi.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/alg3_multi.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/alg4_weighted_multi.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/alg4_weighted_multi.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/baselines.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/baselines.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/driver.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/driver.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/randomized.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/randomized.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/sequences.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/sequences.cpp.o.d"
  "CMakeFiles/calibsched_online.dir/online/trace.cpp.o"
  "CMakeFiles/calibsched_online.dir/online/trace.cpp.o.d"
  "libcalibsched_online.a"
  "libcalibsched_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

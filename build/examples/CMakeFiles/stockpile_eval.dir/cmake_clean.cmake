file(REMOVE_RECURSE
  "CMakeFiles/stockpile_eval.dir/stockpile_eval.cpp.o"
  "CMakeFiles/stockpile_eval.dir/stockpile_eval.cpp.o.d"
  "stockpile_eval"
  "stockpile_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stockpile_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

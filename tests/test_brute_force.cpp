// Brute force: the Lemma 4.2 candidate restriction must agree with the
// fully exhaustive start enumeration (this is the empirical test of
// Lemma 4.2 itself), plus sanity on tiny closed-form instances.
#include <gtest/gtest.h>

#include "core/critical.hpp"
#include "offline/brute_force.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(BruteForce, SingleJobRunsAtRelease) {
  const Instance instance({Job{4, 3}}, 5);
  const OfflineSolution solution = brute_force_budget(instance, 1);
  ASSERT_TRUE(solution.feasible());
  EXPECT_EQ(solution.flow, 3);  // w * 1
  EXPECT_EQ(solution.schedule->placement(0).start, 4);
}

TEST(BruteForce, InfeasibleWhenBudgetTooSmall) {
  const Instance instance({Job{0, 1}, Job{1, 1}, Job{2, 1}}, 2);
  EXPECT_FALSE(brute_force_budget(instance, 1).feasible());
  EXPECT_TRUE(brute_force_budget(instance, 2).feasible());
}

TEST(BruteForce, EmptyInstanceCostsNothing) {
  const Instance instance(std::vector<Job>{}, 3);
  const OfflineSolution solution = brute_force_budget(instance, 2);
  ASSERT_TRUE(solution.feasible());
  EXPECT_EQ(solution.flow, 0);
}

TEST(BruteForce, OnlineObjectiveTradesCalibrationsForFlow) {
  // Two jobs far apart. Cheap G: calibrate twice, run both at release
  // (flow 2). Expensive G: one calibration near the second job; the
  // first job waits.
  const Instance instance({Job{0, 1}, Job{10, 1}}, 4);
  const OfflineSolution cheap = brute_force_online_objective(instance, 2);
  ASSERT_TRUE(cheap.feasible());
  EXPECT_EQ(cheap.schedule->calendar().count(), 2);
  EXPECT_EQ(cheap.schedule->online_cost(instance, 2), 2 * 2 + 2);

  const OfflineSolution pricey =
      brute_force_online_objective(instance, 100);
  ASSERT_TRUE(pricey.feasible());
  EXPECT_EQ(pricey.schedule->calendar().count(), 1);
  // Interval [7, 11): job 0 at 7 (flow 8), job 1 at 10 (flow 1).
  EXPECT_EQ(pricey.schedule->online_cost(instance, 100), 100 + 9);
}

TEST(BruteForce, MultiMachineUsesBothMachines) {
  const Instance instance({Job{0, 1}, Job{0, 1}}, 2, 2);
  const OfflineSolution solution = brute_force_budget(
      instance, 2, StartCandidates::kExhaustive);
  ASSERT_TRUE(solution.feasible());
  EXPECT_EQ(solution.flow, 2);  // both at release on separate machines
}

struct Lemma42Params {
  int jobs;
  Time span;
  Time T;
  WeightModel weights;
  int trials;
  std::uint64_t seed;
};

class Lemma42Sweep : public ::testing::TestWithParam<Lemma42Params> {};

// Lemma 4.2, empirically: restricting interval starts to
// { r_j + 1 - T } never loses optimality on one machine.
TEST_P(Lemma42Sweep, RestrictedCandidatesMatchExhaustive) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  for (int trial = 0; trial < p.trials; ++trial) {
    const Instance instance = sparse_uniform_instance(
        p.jobs, p.span, p.T, 1, p.weights, 4, prng);
    for (int k = 1; k <= 3; ++k) {
      const OfflineSolution restricted =
          brute_force_budget(instance, k, StartCandidates::kLemma42);
      const OfflineSolution exhaustive =
          brute_force_budget(instance, k, StartCandidates::kExhaustive);
      EXPECT_EQ(restricted.flow, exhaustive.flow)
          << instance.to_string() << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma42Sweep,
    ::testing::Values(Lemma42Params{4, 8, 2, WeightModel::kUnit, 25, 21},
                      Lemma42Params{4, 8, 3, WeightModel::kUniform, 25, 22},
                      Lemma42Params{5, 10, 2, WeightModel::kUniform, 20, 23},
                      Lemma42Params{5, 9, 4, WeightModel::kZipf, 20, 24},
                      Lemma42Params{6, 11, 3, WeightModel::kUniform, 12, 25},
                      Lemma42Params{6, 12, 2, WeightModel::kBimodal, 12,
                                    26}));

// Lemma 4.1/4.2 structure: some brute-force optimum satisfies them; our
// witness (greedy assignment over the best calendar) satisfies 4.1.
TEST(BruteForce, WitnessSatisfiesLemma41) {
  Prng prng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 10, 3, 1, WeightModel::kUniform, 4, prng);
    const OfflineSolution solution = brute_force_budget(instance, 2);
    if (!solution.feasible()) continue;
    EXPECT_TRUE(satisfies_lemma_4_1(instance, *solution.schedule))
        << instance.to_string();
  }
}

TEST(BruteForce, OnlineObjectiveNeverWorseThanAnyFixedBudget) {
  Prng prng(57);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 10, 3, 1, WeightModel::kUniform, 4, prng);
    const Cost G = prng.uniform_int(1, 12);
    const OfflineSolution combined =
        brute_force_online_objective(instance, G);
    ASSERT_TRUE(combined.feasible());
    const Cost combined_cost =
        combined.schedule->online_cost(instance, G);
    for (int k = 1; k <= instance.size(); ++k) {
      const OfflineSolution fixed = brute_force_budget(instance, k);
      if (!fixed.feasible()) continue;
      EXPECT_LE(combined_cost, G * k + fixed.flow);
    }
  }
}

}  // namespace
}  // namespace calib

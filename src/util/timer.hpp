// Monotonic wall-clock timer. Originally introduced for the DP scaling
// experiment (E6); now used across the harness (per-cell wall time, DP
// cache accounting), the benches, and the obs layer's span fallbacks.
#pragma once

#include <chrono>
#include <cstdint>

namespace calib {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace calib

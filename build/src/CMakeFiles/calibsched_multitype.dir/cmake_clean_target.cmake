file(REMOVE_RECURSE
  "libcalibsched_multitype.a"
)

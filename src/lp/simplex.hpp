// Dense two-phase primal simplex solver, built from scratch.
//
// Solves   minimize c^T x   s.t.  each row (a_i^T x) {<=,=,>=} b_i, x >= 0.
//
// Phase 1 drives artificial variables out of the basis; Bland's rule
// guarantees termination under degeneracy. Dense tableaus are fine at
// the scale the Figure 1 LP reaches on certified-small instances
// (hundreds of rows/columns).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace calib {

enum class Relation { kLe, kEq, kGe };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpRow {
  std::vector<std::pair<int, double>> coefficients;  ///< (var index, coef)
  Relation relation = Relation::kGe;
  double rhs = 0.0;
};

struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars; minimized
  std::vector<LpRow> rows;

  int add_variable(double cost);
  void add_row(LpRow row);
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double value = 0.0;
  std::vector<double> x;
};

/// Solve with tolerance `eps` for pivoting/feasibility decisions.
LpSolution solve_lp(const LpProblem& problem, double eps = 1e-9);

}  // namespace calib

// E4 — Theorem 3.10: Algorithm 3 is 12-competitive on P machines
// (unweighted).
//
// Small instances: ratio against the exhaustive multi-machine optimum.
// Larger instances: ratio against the Figure 1 LP lower bound (an upper
// bound on the true competitive ratio, by weak duality). Expected
// shape: both stay far below 12; the LP-based figure is looser (the
// relaxation pays calibrations fractionally) but still single-digit.
#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "lp/calib_lp.hpp"
#include "offline/brute_force.hpp"
#include "online/alg3_multi.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_Alg3SmallVsExhaustive(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const Cost G = state.range(1);
  Prng prng(static_cast<std::uint64_t>(machines * 101 + G));
  double worst = 0.0;
  for (auto _ : state) {
    const Instance instance = sparse_uniform_instance(
        6, 10, 3, machines, WeightModel::kUnit, 1, prng);
    Alg3Multi policy;
    const Cost alg = online_objective(instance, G, policy);
    const OfflineSolution opt = brute_force_online_objective(
        instance, G, StartCandidates::kExhaustive);
    worst = std::max(worst, static_cast<double>(alg) /
                                static_cast<double>(opt.schedule->online_cost(
                                    instance, G)));
  }
  state.counters["worst_ratio"] = worst;
}

BENCHMARK(BM_Alg3SmallVsExhaustive)
    ->ArgsProduct({{1, 2, 3}, {4, 9}})
    ->Unit(benchmark::kMillisecond);

void BM_Alg3Throughput(benchmark::State& state) {
  // Raw policy throughput on a big instance (no OPT): jobs per second.
  const int machines = static_cast<int>(state.range(0));
  Prng prng(42);
  PoissonConfig config;
  config.rate = 0.4 * machines;
  config.steps = 5000;
  const Instance instance = poisson_instance(config, 10, machines, prng);
  for (auto _ : state) {
    Alg3Multi policy;
    benchmark::DoNotOptimize(run_online(instance, 20, policy));
  }
  state.SetItemsProcessed(state.iterations() * instance.size());
}

BENCHMARK(BM_Alg3Throughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE4 / Theorem 3.10 - Algorithm 3 on P machines "
                 "(bound = 12).\nSmall instances vs exhaustive OPT "
                 "(30 seeds); medium instances vs the Figure 1 LP lower "
                 "bound (10 seeds):\n";
    Table table({"P", "G", "T", "reference", "mean", "max"});
    for (const int machines : {1, 2, 3}) {
      for (const Cost G : {4, 9}) {
        const Summary exact = benchutil::ensemble(
            30, [&](std::uint64_t seed) {
              Prng prng(seed * 7907u +
                        static_cast<std::uint64_t>(machines * 13 + G));
              const Instance instance = sparse_uniform_instance(
                  6, 10, 3, machines, WeightModel::kUnit, 1, prng);
              Alg3Multi policy;
              const Cost alg = online_objective(instance, G, policy);
              const OfflineSolution opt = brute_force_online_objective(
                  instance, G, StartCandidates::kExhaustive);
              return static_cast<double>(alg) /
                     static_cast<double>(
                         opt.schedule->online_cost(instance, G));
            });
        table.row()
            .add(machines)
            .add(G)
            .add(static_cast<std::int64_t>(3))
            .add("exhaustive OPT")
            .add(exact.mean(), 3)
            .add(exact.max(), 3);
      }
    }
    for (const int machines : {2, 4}) {
      const Cost G = 8;
      const Summary lp_ratio = benchutil::ensemble(
          10, [&](std::uint64_t seed) {
            Prng prng(seed * 6229u + static_cast<std::uint64_t>(machines));
            const Instance instance = sparse_uniform_instance(
                8, 14, 4, machines, WeightModel::kUnit, 1, prng);
            Alg3Multi policy;
            const Cost alg = online_objective(instance, G, policy);
            return static_cast<double>(alg) / lp_lower_bound(instance, G);
          });
      table.row()
          .add(machines)
          .add(G)
          .add(static_cast<std::int64_t>(4))
          .add("LP lower bound")
          .add(lp_ratio.mean(), 3)
          .add(lp_ratio.max(), 3);
    }
    table.print(std::cout);
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

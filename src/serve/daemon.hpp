// The `calibsched serve` daemon: streaming scheduling-as-a-service.
//
// One event-loop thread owns every socket and all admission state; a
// thread pool runs the (potentially slow) per-tenant decision steps.
// The two sides meet at a locked completion queue plus a wake pipe, so
// the loop never blocks on a decision and a decision never touches a
// socket. Robustness envelope (DESIGN.md §12):
//
//   admission   per-tenant budgets — max pending submits, a submit
//               token bucket, a session-lifetime step budget — are
//               checked on the loop thread before any work is queued;
//               violations shed with kError{RETRY_AFTER}, never queue
//   backpressure outbound bytes per connection are bounded: past the
//               soft cap the daemon stops reading that peer, past the
//               hard cap it drops the connection
//   watchdog    a decision running past its deadline demotes the
//               tenant to `degraded` (sticky); its late result is
//               discarded and everyone else keeps being served
//   reaper      idle / half-open connections are closed after
//               idle_timeout_ms; the session survives for reattach
//   drain       SIGTERM/SIGINT (or stop()): stop accepting, finish
//               admitted decisions within a grace window, emit final
//               kTenantStats, flush, exit 0
//   journal     accepted jobs are journaled (fsync'd) before their
//               decision frame is sent, so `serve --resume` replays
//               every session to a state byte-identical with what the
//               clients observed
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "harness/faults.hpp"
#include "serve/session.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace calib::serve {

struct ServeOptions {
  std::string socket_path;   ///< Unix listener path ("" = none)
  int tcp_port = -1;         ///< >= 0: loopback TCP listener (0 = ephemeral)
  std::string journal_path;  ///< tenant journal ("" = no journal)
  bool resume = false;       ///< restore sessions from the journal
  std::size_t max_sessions = 64;
  SessionLimits limits;
  double idle_timeout_ms = 0.0;  ///< connection reaper (0 = off)
  std::size_t outbound_soft_cap = 1u << 20;  ///< stop reading past this
  std::size_t outbound_hard_cap = 4u << 20;  ///< drop connection past this
  std::size_t threads = 0;       ///< decision pool size (0 = hardware)
  double drain_grace_ms = 5000.0;
  harness::ServeFaultPlan faults;  ///< --inject-faults plan
  std::ostream* events = nullptr;  ///< flight-recorder stream (JSONL)
  std::ostream* log = nullptr;     ///< human-readable status lines
};

/// Force registration of the daemon's metric handles (same contract as
/// sandbox_metrics_warmup: resolve before threads contend).
void serve_metrics_warmup();

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Run until a graceful-drain request (SIGTERM/SIGINT/stop()).
  /// Returns 0 on a clean drain, 1 on startup failure.
  int run();

  /// Request graceful drain from any thread (the test-side SIGTERM).
  void stop();

  /// Block until the listeners are accepting (true) or `timeout_ms`
  /// passes (false). Test synchronization for daemons on a thread.
  [[nodiscard]] bool wait_ready(double timeout_ms) const;

  /// Actual TCP port once ready (ephemeral binds resolve here); -1
  /// when no TCP listener was requested.
  [[nodiscard]] int tcp_port() const {
    return bound_tcp_port_.load(std::memory_order_acquire);
  }

 private:
  struct Impl;
  ServeOptions options_;
  std::atomic<bool> ready_{false};
  std::atomic<bool> stop_requested_{false};
  // The wake fd is written by stop() (any thread) and closed by the
  // loop thread on exit; the mutex makes write-vs-close atomic so a
  // late stop() can never hit a closed (or reused) descriptor.
  mutable Mutex wake_mutex_;
  int wake_fd_ CALIB_GUARDED_BY(wake_mutex_) = -1;
  std::atomic<int> bound_tcp_port_{-1};
};

}  // namespace calib::serve

// calib::obs — metrics timelines: cumulative snapshots as a time series.
//
// The sharded executor's workers stream cumulative obs snapshots inside
// their heartbeats. A Timeline turns that stream into per-source
// *delta* samples: record() diffs each cumulative snapshot against the
// source's previous one, so a sample holds what happened in that
// heartbeat interval (counter increments, histogram count/sum growth)
// plus the instantaneous gauge levels. That is the shape rate questions
// want — rows/sec per worker, queue depth over time — without
// re-deriving diffs downstream.
//
// The JSONL export is one flat object per line ({"t_ms":..,
// "source":"worker-0","c:sweep.cells_ok":2,...}), written by `sweep
// --metrics-timeline` and rendered by `calibsched stats --timeline`.
// load_jsonl() is deliberately forgiving: a torn trailing line (the
// writer died mid-line) or a corrupt line is skipped and counted, never
// fatal — the readable prefix of a timeline is always usable.
//
// Unlike the collector classes, Timeline is identical in both
// CALIBSCHED_OBS configurations: it only consumes Snapshot values,
// which exist (possibly empty) either way.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace calib::obs {

class Timeline {
 public:
  /// Total sample cap: past it record() drops (and counts) instead of
  /// growing without bound — a sweep can heartbeat for hours.
  static constexpr std::size_t kMaxSamples = 1 << 16;

  struct HistDelta {
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  struct Sample {
    double t_ms = 0.0;    ///< receiver clock, ms since the run started
    std::string source;   ///< "worker-0", "worker-1", ...
    /// Counter increments over the interval (zero deltas elided).
    std::map<std::string, std::uint64_t> counters;
    /// Gauge levels at sample time (absolute, always included).
    std::map<std::string, std::int64_t> gauges;
    /// Histogram count/sum growth over the interval (zero elided).
    std::map<std::string, HistDelta> histograms;
  };

  /// Fold one cumulative snapshot in: the stored sample is the delta
  /// against `source`'s previous cumulative snapshot (the first sample
  /// of a source is its full snapshot). A cumulative value that went
  /// *backwards* (the source's registry was reset) restarts the
  /// baseline: the sample records the new cumulative value as-is.
  void record(const std::string& source, double t_ms,
              const Snapshot& cumulative);

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// One flat JSON object per sample, parse_flat_json-compatible.
  void write_jsonl(std::ostream& os) const;

  /// Parse a write_jsonl stream. Malformed or torn lines are skipped
  /// and counted into *skipped (when non-null); the result holds every
  /// line that survived.
  [[nodiscard]] static Timeline load_jsonl(std::istream& is,
                                           std::size_t* skipped = nullptr);

 private:
  std::vector<Sample> samples_;
  std::map<std::string, Snapshot> last_;  ///< previous cumulative per source
  std::uint64_t dropped_ = 0;
};

}  // namespace calib::obs

#include "online/alg1_unweighted.hpp"

#include "util/check.hpp"

namespace calib {

void Alg1Unweighted::decide(DriverHandle& handle) {
  CALIB_CHECK_MSG(handle.machines() == 1,
                  "Algorithm 1 is a single-machine policy");
  const Time t = handle.now();
  if (handle.calibrated(0, t)) return;  // line 6
  if (handle.waiting_empty()) return;

  const Cost G = handle.G();
  const Time T = handle.T();
  // line 7: flow if all waiting jobs ran back-to-back from t+1.
  const Cost f = handle.queue_flow_from(t + 1, QueueOrder::kFifo);
  // line 8: |Q| >= G/T (integer-exact: |Q| * T >= G) or f >= G.
  const auto queue_size = static_cast<Cost>(handle.waiting_count());
  if (queue_size * T >= G || f >= G) {
    handle.calibrate();  // line 9
    return;
  }
  if (!immediate_) return;
  // lines 11-14: immediate calibration after a light interval. `p` is
  // the realized flow of the most recent interval; p < 0 means no
  // calibration has happened yet, in which case the rule cannot fire.
  const Cost p = handle.last_interval_flow();
  if (p >= 0 && 2 * p < G && handle.arrived_now()) {
    handle.calibrate();  // line 13
  }
}

}  // namespace calib

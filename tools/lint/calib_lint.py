#!/usr/bin/env python3
"""calib_lint — repo-specific lint rules a generic tool cannot express.

Driven by the CMake compilation database: the file set is every
translation unit in compile_commands.json that lives under src/, plus
every header under src/ (headers do not appear in the database). Rules:

  fork-child-signal-safety
      The regions of src/harness/sandbox.cpp marked
      `calib-lint: signal-safe-begin/end` — the code that runs in the
      forked child between fork() and _exit() — may only call
      async-signal-safe functions: no heap allocation, no stdio, no
      locking, no exceptions, no std::string building. The markers
      themselves are mandatory (removing them is a finding), so the
      guarantee cannot be silently deleted.

  ipc-magic
      The 0x43414C42 frame magic must be defined in exactly one header
      (src/util/framing.hpp); every other occurrence in code must
      spell kFrameMagic. Two definitions can drift apart; framing bugs
      between the sandbox pipe, the executor fleet, and the serve
      daemon's socket protocol are exactly the silent kind.

  raw-io-layering
      Raw blocking I/O syscalls (::read, ::write, ::poll, ::select,
      ::recv, ::send, ::pread, ::pwrite) may appear only in the two
      designated I/O layers — src/util/framing.cpp (framed-pipe
      primitives, EINTR-safe wrappers) and src/serve/io.cpp (the
      daemon's non-blocking connection pumps). Everything else goes
      through those wrappers, so EINTR handling, partial-write loops,
      and poisoning semantics live in exactly one place per transport.

  calib-check
      No raw assert()/<cassert> in src/ — assert vanishes in NDEBUG
      builds, while CALIB_CHECK (util/check.hpp) stays on in release,
      which is the project's invariant-checking contract.

  no-iostream
      Library layers (src/core, src/online, src/util) must not include
      <iostream>: it drags static-init order dependencies into every
      consumer and its operators lock around shared streams. The
      harness/CLI layers, which own process output, are exempt.

  no-naked-new
      No naked new/delete expressions in src/ — ownership goes through
      containers and smart pointers. Placement new (e.g. onto the
      sandbox's MAP_SHARED page) is allowed: it expresses construction
      at an address, not heap ownership.

  policy-driver-isolation
      Files under src/online/ other than the driver itself, policy.hpp
      (which defines DriverHandle), and the adversary may neither name
      OnlineDriver nor include online/driver.hpp. DriverHandle is the
      entire legal information surface of an online policy; reaching
      past it would let a policy read state the online model does not
      reveal.

  obs-encapsulation
      Outside src/obs/, code must not name MetricsRegistry or
      TraceCollector: instrumentation goes through the obs::metrics() /
      obs::tracer() facades and the value handles (Counter, Histogram,
      ScopedSpan, Snapshot, TraceChunk) they deal in. Direct use of the
      backing classes would punch holes in the CALIBSCHED_OBS=OFF no-op
      collapse and couple call sites to the sharding internals.

Usage:
  calib_lint.py --compdb build/compile_commands.json   # lint the tree
  calib_lint.py --files a.cpp b.hpp                    # lint a file set
Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Source model


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string literals, and char literals, keeping
    line structure (newlines survive) so finding line numbers stay true.
    Lint *markers* live in comments, so callers that need them must look
    at the raw text; every code-pattern rule runs on the stripped text.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":  # block comment
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == '"' or c == "'":  # string / char literal
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * max(0, j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Rule: fork-child-signal-safety

# Callables that are definitely not async-signal-safe, by family. The
# check is an identifier denylist rather than an allowlist so ordinary
# arithmetic/control flow stays unrestricted; every family named here is
# one the child path historically wanted to use.
SIGNAL_UNSAFE = {
    # heap
    "malloc", "calloc", "realloc", "free", "new", "delete",
    # stdio / iostream
    "printf", "fprintf", "sprintf", "snprintf", "puts", "fputs", "fopen",
    "fclose", "fflush", "fwrite", "fread", "cout", "cerr", "clog",
    # process teardown that runs handlers
    "exit", "atexit", "abort",
    # locking / waiting
    "mutex", "lock", "unlock", "MutexLock", "scoped_lock", "unique_lock",
    "condition_variable", "wait",
    # allocation-happy C++ vocabulary
    "string", "vector", "make_shared", "make_unique", "to_string",
    "ostringstream", "stringstream",
    # exceptions
    "throw", "try", "catch",
}

MARKER_BEGIN = "calib-lint: signal-safe-begin"
MARKER_END = "calib-lint: signal-safe-end"
SANDBOX_FILE = "src/harness/sandbox.cpp"

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def check_signal_safety(path: Path, raw: str, rel: str) -> list[Finding]:
    findings: list[Finding] = []
    if rel != SANDBOX_FILE:
        return findings
    begins = [m.start() for m in re.finditer(re.escape(MARKER_BEGIN), raw)]
    ends = [m.start() for m in re.finditer(re.escape(MARKER_END), raw)]
    if not begins or len(begins) != len(ends):
        findings.append(
            Finding(
                "fork-child-signal-safety", path, 1,
                "sandbox.cpp must carry matched "
                f"'{MARKER_BEGIN}'/'{MARKER_END}' markers around the "
                "fork()-to-_exit() child path",
            )
        )
        return findings
    stripped = strip_comments_and_strings(raw)
    for begin, end in zip(begins, ends):
        if end <= begin:
            findings.append(
                Finding("fork-child-signal-safety", path, line_of(raw, end),
                        "signal-safe-end marker precedes its begin marker"))
            continue
        region = stripped[begin:end]
        for m in IDENT_RE.finditer(region):
            word = m.group(0)
            if word in SIGNAL_UNSAFE:
                findings.append(
                    Finding(
                        "fork-child-signal-safety", path,
                        line_of(raw, begin + m.start()),
                        f"'{word}' is not async-signal-safe; the marked "
                        "child path may only use write/close/_exit-class "
                        "calls",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Rule: ipc-magic

MAGIC_RE = re.compile(r"0x43414C42", re.IGNORECASE)
MAGIC_HEADER = "src/util/framing.hpp"


def check_ipc_magic(path: Path, stripped: str, rel: str) -> list[Finding]:
    findings = []
    for m in MAGIC_RE.finditer(stripped):
        if rel != MAGIC_HEADER:
            findings.append(
                Finding(
                    "ipc-magic", path, line_of(stripped, m.start()),
                    "IPC frame magic 0x43414C42 must be referenced via "
                    f"kFrameMagic from {MAGIC_HEADER}, not respelled",
                )
            )
    return findings


def check_ipc_magic_defined(files: dict[str, str]) -> list[Finding]:
    header = files.get(MAGIC_HEADER)
    if header is None:
        return []
    count = len(MAGIC_RE.findall(strip_comments_and_strings(header)))
    if count == 1:
        return []
    return [
        Finding(
            "ipc-magic", Path(MAGIC_HEADER), 1,
            f"expected exactly one 0x43414C42 definition in {MAGIC_HEADER}, "
            f"found {count}",
        )
    ]


# ---------------------------------------------------------------------------
# Rule: raw-io-layering

# Blocking I/O syscalls spelled with the explicit global-namespace
# qualifier — the repo convention for "this is the raw syscall, not a
# wrapper". Each transport gets exactly one home for them: the framed
# pipe/socket primitives (EINTR loops, write_all, poll_fds) and the
# serve daemon's non-blocking connection pumps. A third call site means
# a third copy of the partial-I/O/EINTR/poisoning logic to get wrong.
RAW_IO_RE = re.compile(
    r"::(read|write|poll|select|recv|send|pread|pwrite)\s*\(")
RAW_IO_ALLOWLIST = {
    "src/util/framing.cpp",
    "src/serve/io.cpp",
}


def check_raw_io_layering(path: Path, stripped: str,
                          rel: str) -> list[Finding]:
    if rel in RAW_IO_ALLOWLIST:
        return []
    return [
        Finding(
            "raw-io-layering", path, line_of(stripped, m.start()),
            f"raw ::{m.group(1)}() outside the I/O layers "
            "(src/util/framing.cpp, src/serve/io.cpp); use the "
            "calib:: wrappers (write_all/read_some/poll_fds) or the "
            "serve connection pumps so EINTR and partial-I/O handling "
            "stay in one place",
        )
        for m in RAW_IO_RE.finditer(stripped)
    ]


# ---------------------------------------------------------------------------
# Rule: calib-check

ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
CASSERT_RE = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')


def check_calib_check(path: Path, stripped: str, rel: str) -> list[Finding]:
    findings = []
    for m in ASSERT_RE.finditer(stripped):
        # static_assert is compile-time and fine; the lookbehind already
        # excludes it via the identifier boundary, but be explicit about
        # the only sanctioned dynamic form.
        findings.append(
            Finding(
                "calib-check", path, line_of(stripped, m.start()),
                "raw assert() vanishes under NDEBUG; use CALIB_CHECK / "
                "CALIB_CHECK_MSG (util/check.hpp)",
            )
        )
    for m in CASSERT_RE.finditer(stripped):
        findings.append(
            Finding("calib-check", path, line_of(stripped, m.start()),
                    "do not include <cassert>; use util/check.hpp"))
    return findings


# ---------------------------------------------------------------------------
# Rule: no-iostream

IOSTREAM_RE = re.compile(r"#\s*include\s*<iostream>")
LIBRARY_LAYERS = ("src/core/", "src/online/", "src/util/")


def check_no_iostream(path: Path, stripped: str, rel: str) -> list[Finding]:
    if not rel.startswith(LIBRARY_LAYERS):
        return []
    return [
        Finding(
            "no-iostream", path, line_of(stripped, m.start()),
            "library code (src/core, src/online, src/util) must not "
            "include <iostream>; use <cstdio>, <sstream>, or take an "
            "std::ostream&",
        )
        for m in IOSTREAM_RE.finditer(stripped)
    ]


# ---------------------------------------------------------------------------
# Rule: no-naked-new

# A `new` expression not immediately preceded by an operator-overload
# context and not placement-new (`new (addr) T`). `delete` expressions
# including `delete[]`.
NEW_RE = re.compile(r"(?<![A-Za-z0-9_])new\s+(?!\()")
PLACEMENT_NEW_RE = re.compile(r"(?<![A-Za-z0-9_])new\s*\(")
DELETE_RE = re.compile(r"(?<![A-Za-z0-9_])delete(\s*\[\s*\])?\s")
OPERATOR_RE = re.compile(r"operator\s*$")


def check_no_naked_new(path: Path, stripped: str, rel: str) -> list[Finding]:
    findings = []
    for m in NEW_RE.finditer(stripped):
        if OPERATOR_RE.search(stripped, max(0, m.start() - 12), m.start()):
            continue
        findings.append(
            Finding(
                "no-naked-new", path, line_of(stripped, m.start()),
                "naked new expression; use std::make_unique / "
                "std::make_shared / a container (placement new is exempt)",
            )
        )
    for m in DELETE_RE.finditer(stripped):
        context = stripped[max(0, m.start() - 12):m.start()]
        if re.search(r"operator\s*$", context):
            continue
        if re.search(r"=\s*$", context):  # `= delete;` declarations
            continue
        findings.append(
            Finding("no-naked-new", path, line_of(stripped, m.start()),
                    "naked delete expression; owners should be RAII types"))
    return findings


# ---------------------------------------------------------------------------
# Rule: policy-driver-isolation

# DriverHandle (online/policy.hpp) is the *entire* legal information
# surface of a policy. Only the driver itself, the handle that wraps it,
# and the adversary (which legitimately drives simulations step by step)
# may name OnlineDriver; a policy translation unit that reaches past the
# handle can read state an online algorithm does not have.
DRIVER_ALLOWLIST = {
    "src/online/driver.hpp",
    "src/online/driver.cpp",
    "src/online/policy.hpp",  # DriverHandle stores the OnlineDriver&
    "src/online/adversary.hpp",
    "src/online/adversary.cpp",
}
ONLINE_DRIVER_RE = re.compile(r"(?<![A-Za-z0-9_])OnlineDriver(?![A-Za-z0-9_])")
DRIVER_INCLUDE_RE = re.compile(r'#\s*include\s*"online/driver\.hpp"')


def check_policy_driver_isolation(path: Path, raw: str,
                                  rel: str) -> list[Finding]:
    if not rel.startswith("src/online/") or rel in DRIVER_ALLOWLIST:
        return []
    findings = []
    # The include directive's path is a string literal, so this must run
    # on the raw text (stripping blanks it out).
    for m in DRIVER_INCLUDE_RE.finditer(raw):
        findings.append(
            Finding(
                "policy-driver-isolation", path, line_of(raw, m.start()),
                "policy code must not include online/driver.hpp; the "
                "DriverHandle surface (online/policy.hpp) is the entire "
                "legal view of driver state",
            )
        )
    stripped = strip_comments_and_strings(raw)
    for m in ONLINE_DRIVER_RE.finditer(stripped):
        findings.append(
            Finding(
                "policy-driver-isolation", path, line_of(stripped, m.start()),
                "'OnlineDriver' named outside the driver/adversary "
                "allowlist; policies consume DriverHandle only",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Rule: obs-encapsulation

# The backing classes of the obs layer. Everything else in the facade's
# vocabulary (Counter, Histogram, ScopedSpan, Snapshot, TraceChunk,
# TraceEvent, ProcessTrace, Timeline) is a value type meant to travel.
OBS_BACKING_RE = re.compile(
    r"(?<![A-Za-z0-9_])(MetricsRegistry|TraceCollector)(?![A-Za-z0-9_])")
OBS_LAYER = "src/obs/"


def check_obs_encapsulation(path: Path, stripped: str,
                            rel: str) -> list[Finding]:
    if rel.startswith(OBS_LAYER):
        return []
    return [
        Finding(
            "obs-encapsulation", path, line_of(stripped, m.start()),
            f"'{m.group(1)}' named outside src/obs/; go through "
            "obs::metrics() / obs::tracer() and their value handles so "
            "the CALIBSCHED_OBS=OFF collapse stays airtight",
        )
        for m in OBS_BACKING_RE.finditer(stripped)
    ]


# ---------------------------------------------------------------------------
# Driver

# Rules that need the raw (unstripped) text: markers live in comments,
# include paths are string literals.
RAW_TEXT_RULES = {"check_signal_safety", "check_policy_driver_isolation"}

RULES = [
    check_signal_safety,
    check_ipc_magic,
    check_raw_io_layering,
    check_calib_check,
    check_no_iostream,
    check_no_naked_new,
    check_policy_driver_isolation,
    check_obs_encapsulation,
]


def collect_files(args: argparse.Namespace, repo: Path) -> list[Path]:
    if args.files:
        return [Path(f).resolve() for f in args.files]
    compdb = Path(args.compdb)
    if not compdb.is_file():
        print(
            f"calib_lint: compilation database not found: {compdb}\n"
            "  configure first (cmake -B build -S .) — "
            "CMAKE_EXPORT_COMPILE_COMMANDS is on by default",
            file=sys.stderr,
        )
        sys.exit(2)
    entries = json.loads(compdb.read_text())
    files = set()
    for entry in entries:
        source = Path(entry["file"])
        if not source.is_absolute():
            source = Path(entry["directory"]) / source
        source = source.resolve()
        try:
            rel = source.relative_to(repo)
        except ValueError:
            continue
        if rel.parts[0] == "src":
            files.add(source)
    # Headers are not translation units; sweep them from the tree.
    for header in (repo / "src").rglob("*.hpp"):
        files.add(header.resolve())
    return sorted(files)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compdb", default="build/compile_commands.json",
                        help="compilation database (default: %(default)s)")
    parser.add_argument("--files", nargs="*", default=None,
                        help="explicit file list (bypasses the compdb; "
                        "used by the fixture tests)")
    parser.add_argument("--repo", default=None,
                        help="repository root (default: two dirs up from "
                        "this script)")
    args = parser.parse_args()

    repo = Path(args.repo).resolve() if args.repo else \
        Path(__file__).resolve().parents[2]
    paths = collect_files(args, repo)
    if not paths:
        print("calib_lint: no files to lint", file=sys.stderr)
        return 2

    contents: dict[str, str] = {}
    findings: list[Finding] = []
    for path in paths:
        try:
            raw = path.read_text(encoding="utf-8", errors="replace")
        except OSError as error:
            print(f"calib_lint: cannot read {path}: {error}", file=sys.stderr)
            return 2
        try:
            rel = str(path.relative_to(repo))
        except ValueError:
            rel = path.name  # fixture mode: rules keyed on layout are
            # matched by basename convention below
        contents[rel] = raw
        stripped = strip_comments_and_strings(raw)
        for rule in RULES:
            if rule.__name__ in RAW_TEXT_RULES:
                findings.extend(rule(path, raw, rel))
            else:
                findings.extend(rule(path, stripped, rel))

    # The single-definition check needs the whole-tree view; it applies
    # whenever the canonical header is part of the linted set (always in
    # compdb mode, opt-in for fixtures).
    findings.extend(check_ipc_magic_defined(contents))

    for finding in sorted(findings, key=lambda f: (str(f.path), f.line)):
        print(finding)
    if findings:
        print(f"calib_lint: {len(findings)} finding(s) in "
              f"{len(paths)} file(s)", file=sys.stderr)
        return 1
    print(f"calib_lint: clean ({len(paths)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

// E9 — design-choice ablations the paper discusses but does not
// evaluate:
//   (1) Algorithm 1 with/without immediate calibrations (the Section 3
//       remark: for T < G/T they can be removed);
//   (2) Algorithm 2's queue order — Observation 2.1's heaviest-first vs
//       the literal line-13 "smallest weight" (DESIGN.md ambiguity #1);
//   (3) Algorithm 3 explicit placements vs Observation 2.1 reassignment
//       (the paper's "in practice" note);
//   (4) the special regimes G/T < 1 and T < G/T.
// Expected shape: immediate calibrations help exactly when T >= G/T;
// heaviest-first dominates lightest-first on weighted flow; the
// reassignment is never worse and often strictly better.
#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/alg2_weighted.hpp"
#include "online/alg3_multi.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_Alg1ImmediateToggle(benchmark::State& state) {
  const bool immediate = state.range(0) != 0;
  Prng prng(17);
  PoissonConfig config;
  config.rate = 0.3;
  config.steps = 400;
  const Instance instance = poisson_instance(config, 6, 1, prng);
  for (auto _ : state) {
    Alg1Unweighted policy(immediate);
    benchmark::DoNotOptimize(online_objective(instance, 18, policy));
  }
  state.SetLabel(immediate ? "with immediate" : "without immediate");
}

BENCHMARK(BM_Alg1ImmediateToggle)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE9.1 - Algorithm 1 immediate calibrations on/off "
                 "(mean objective over 80 seeds; regimes split by "
                 "T vs G/T):\n";
    Table t1({"regime", "G", "T", "with", "without", "without/with"});
    // The rule can only fire when an interval ends light (p < G/2) and
    // the next arrival trips neither the count nor the flow trigger —
    // arithmetically that needs roughly T < G < 2T. Cells outside that
    // band are included to show the rule is then inert (ratio 1.000),
    // matching the Section 3 remark that it is removable when T < G/T.
    for (const auto& [G, T] : std::vector<std::pair<Cost, Time>>{
             {40, 4},    // T < G/T: immediates removable
             {9, 6},     // T < G < 2T: the rule's home turf
             {11, 6},    //   "
             {20, 12},   //   "
             {40, 24}}) {
      Summary with_rule;
      Summary without_rule;
      std::mutex mutex;
      global_pool().parallel_for(80, [&, G, T](std::size_t seed) {
        Prng prng(seed * 911382323u + static_cast<std::uint64_t>(G));
        PoissonConfig config;
        config.rate = 0.2;
        config.steps = 200;
        const Instance instance = poisson_instance(config, T, 1, prng);
        Alg1Unweighted a(true);
        Alg1Unweighted b(false);
        const auto ca = static_cast<double>(online_objective(instance, G, a));
        const auto cb = static_cast<double>(online_objective(instance, G, b));
        const std::scoped_lock lock(mutex);
        with_rule.add(ca);
        without_rule.add(cb);
      });
      t1.row()
          .add(T < G / T ? "T < G/T" : (G > T && G < 2 * T ? "T < G < 2T"
                                                           : "other"))
          .add(static_cast<std::int64_t>(G))
          .add(static_cast<std::int64_t>(T))
          .add(with_rule.mean(), 1)
          .add(without_rule.mean(), 1)
          .add(without_rule.mean() / with_rule.mean(), 3);
    }
    t1.print(std::cout);

    std::cout << "\nE9.2 - Algorithm 2 queue order: Observation 2.1 "
                 "heaviest-first vs literal line-13 lightest-first "
                 "(mean objective, 80 seeds):\n";
    Table t2({"weights", "heaviest", "lightest", "lightest/heaviest"});
    for (const WeightModel weights :
         {WeightModel::kUniform, WeightModel::kZipf,
          WeightModel::kBimodal}) {
      Summary heavy;
      Summary light;
      std::mutex mutex;
      global_pool().parallel_for(80, [&, weights](std::size_t seed) {
        Prng prng(seed * 69069u + static_cast<std::uint64_t>(weights));
        PoissonConfig config;
        config.rate = 0.35;
        config.steps = 120;
        config.weights = weights;
        config.w_max = 9;
        const Instance instance = poisson_instance(config, 5, 1, prng);
        Alg2Weighted a(QueueOrder::kHeaviestFirst);
        Alg2Weighted b(QueueOrder::kLightestFirst);
        const auto ca = static_cast<double>(online_objective(instance, 15, a));
        const auto cb = static_cast<double>(online_objective(instance, 15, b));
        const std::scoped_lock lock(mutex);
        heavy.add(ca);
        light.add(cb);
      });
      t2.row()
          .add(weights == WeightModel::kUniform
                   ? "uniform"
                   : (weights == WeightModel::kZipf ? "zipf" : "bimodal"))
          .add(heavy.mean(), 1)
          .add(light.mean(), 1)
          .add(light.mean() / heavy.mean(), 3);
    }
    t2.print(std::cout);

    std::cout << "\nE9.3 - Algorithm 3: explicit placements vs "
                 "Observation 2.1 reassignment (mean flow, 60 seeds):\n";
    Table t3({"P", "explicit flow", "reassigned flow", "improvement %"});
    for (const int machines : {2, 4}) {
      Summary explicit_flow;
      Summary reassigned_flow;
      std::mutex mutex;
      global_pool().parallel_for(60, [&, machines](std::size_t seed) {
        Prng prng(seed * 2246822519u +
                  static_cast<std::uint64_t>(machines));
        // Heavy bursts force several calibrations in one step — the
        // situation where the paper warns explicit placement can park
        // jobs late in a largely-empty concurrent interval.
        BurstyConfig config;
        config.burst_probability = 0.08;
        config.burst_length = 12;
        config.burst_rate = 1.0;
        config.steps = 120;
        // G/T = 5: step 13 commits jobs several slots deep into a new
        // interval, which is when greedy reassignment can do better.
        const Instance instance =
            bursty_instance(config, 8, machines, prng);
        Alg3Multi policy;
        const Schedule explicit_schedule = run_online(instance, 40, policy);
        const Schedule reassigned =
            reassign_observation_2_1(instance, explicit_schedule);
        const std::scoped_lock lock(mutex);
        explicit_flow.add(
            static_cast<double>(explicit_schedule.weighted_flow(instance)));
        reassigned_flow.add(
            static_cast<double>(reassigned.weighted_flow(instance)));
      });
      t3.row()
          .add(machines)
          .add(explicit_flow.mean(), 1)
          .add(reassigned_flow.mean(), 1)
          .add(100.0 * (1.0 - reassigned_flow.mean() / explicit_flow.mean()),
               2);
    }
    // The paper's warning made concrete: two staggered five-job waves
    // trigger calibrations on different machines; step 13 strands the
    // second wave deep in the new interval while the first machine's
    // interval still has free earlier slots.
    {
      const Instance waves({Job{0, 1}, Job{0, 1}, Job{1, 1}, Job{1, 1},
                            Job{2, 1}, Job{3, 1}, Job{3, 1}, Job{4, 1},
                            Job{4, 1}, Job{5, 1}},
                           /*calibration_length=*/8, /*machines=*/2);
      Alg3Multi policy;
      const Schedule explicit_schedule = run_online(waves, 40, policy);
      const Schedule reassigned =
          reassign_observation_2_1(waves, explicit_schedule);
      t3.row()
          .add("2 (two-wave construction)")
          .add(static_cast<double>(explicit_schedule.weighted_flow(waves)),
               1)
          .add(static_cast<double>(reassigned.weighted_flow(waves)), 1)
          .add(100.0 *
                   (1.0 -
                    static_cast<double>(reassigned.weighted_flow(waves)) /
                        static_cast<double>(
                            explicit_schedule.weighted_flow(waves))),
               2);
    }
    t3.print(std::cout);
    std::cout << "(Random loads show no gap - the practical variant is "
                 "free; the construction shows the gap the paper warns "
                 "about exists.)\n";

    std::cout << "\nE9.4 - special regimes (Section 3 remarks), mean "
                 "competitive ratio vs exact OPT over 40 seeds:\n";
    Table t4({"regime", "G", "T", "alg1 ratio mean", "alg1 ratio max"});
    for (const auto& [label, G, T] :
         std::vector<std::tuple<const char*, Cost, Time>>{
             {"G/T < 1 (serve at release)", 3, 8},
             {"T < G/T (immediates removable)", 64, 4},
             {"balanced", 16, 4}}) {
      const Summary summary = benchutil::ensemble(40, [&](std::uint64_t
                                                              seed) {
        Prng prng(seed * 123457u + static_cast<std::uint64_t>(G));
        const Instance instance = sparse_uniform_instance(
            10, 40, T, 1, WeightModel::kUnit, 1, prng);
        Alg1Unweighted policy;
        return benchutil::ratio_vs_opt(instance, G, policy);
      });
      t4.row()
          .add(label)
          .add(static_cast<std::int64_t>(G))
          .add(static_cast<std::int64_t>(T))
          .add(summary.mean(), 3)
          .add(summary.max(), 3);
    }
    t4.print(std::cout);
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

// Time-stepped online simulation driver.
//
// The driver is the substrate every online experiment runs on: it owns
// the clock, the set of revealed jobs, the calendar built so far, and the
// placements. Jobs may be fed incrementally (add_job at the current
// step), which is what lets the Lemma 3.1 adversary adapt to the
// policy's observable decisions.
#pragma once

#include <vector>

#include "core/calendar.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/solve_result.hpp"
#include "online/policy.hpp"
#include "online/trace.hpp"
#include "util/budget.hpp"

namespace calib {

class OnlineDriver {
 public:
  OnlineDriver(Time T, int machines, Cost G, OnlinePolicy& policy);

  /// Release a job at the current time step. Must be called before
  /// step() processes that step.
  JobId add_job(Weight weight);

  /// Process the current time step (policy decision + assignments), then
  /// advance the clock by one.
  void step();

  /// Keep stepping until every revealed job is placed. CHECKs against
  /// runaway policies that never calibrate.
  void drain();

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Cost G() const { return G_; }
  [[nodiscard]] Time T() const { return calendar_.T(); }
  [[nodiscard]] int machines() const { return calendar_.machines(); }
  [[nodiscard]] bool all_placed() const;

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] const std::vector<JobId>& waiting() const { return waiting_; }
  [[nodiscard]] bool arrived_now() const { return arrived_now_; }
  [[nodiscard]] const Calendar& calendar() const { return calendar_; }
  [[nodiscard]] Time start_of(JobId j) const;
  [[nodiscard]] MachineId machine_of(JobId j) const;

  /// The realized instance (jobs in arrival order, re-sorted by the
  /// Instance constructor) and the realized schedule. Call after drain().
  [[nodiscard]] Instance realized_instance() const;
  [[nodiscard]] Schedule realized_schedule() const;

  /// G * #calibrations + weighted flow of what has been placed so far.
  [[nodiscard]] Cost online_cost() const;

  /// Flow of jobs in the latest completed interval; -1 if none yet.
  [[nodiscard]] Cost last_interval_flow() const;

  [[nodiscard]] Cost queue_flow_from(Time start, QueueOrder order) const;
  [[nodiscard]] Time first_free_slot(MachineId m, Time from, Time to) const;

  // Mutations used by DriverHandle on behalf of the policy.
  MachineId calibrate_round_robin();
  void assign(JobId j, MachineId m, Time start);

  /// Attach an event trace (nullptr detaches). Not owned; must outlive
  /// the driver while attached.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Attach a cooperative budget (nullptr detaches). Charged one unit
  /// per step(); BudgetExceeded propagates to the caller mid-simulation,
  /// which is how the harness turns runaway cells into timeout rows.
  void set_budget(Budget* budget) { budget_ = budget; }

 private:
  void auto_assign();

  OnlinePolicy& policy_;
  Cost G_;
  Calendar calendar_;
  Time now_ = 0;
  bool arrived_now_ = false;
  std::vector<Job> jobs_;
  std::vector<Placement> placements_;
  std::vector<JobId> waiting_;  // ascending release (== arrival order)
  std::vector<std::vector<Time>> occupied_;  // per machine, sorted starts
  MachineId next_rr_machine_ = 0;
  // Most recent calibration, for last_interval_flow().
  Time last_cal_start_ = kUnscheduled;
  MachineId last_cal_machine_ = 0;
  Trace* trace_ = nullptr;
  Budget* budget_ = nullptr;
};

/// Run `policy` over a fixed instance: feed arrivals at their release
/// times, drain, and return the realized schedule (validated). If
/// `trace` is non-null it records the run's event stream (for derived
/// metrics — queue lengths, utilization). If `budget` is non-null it is
/// charged once per simulated step; BudgetExceeded propagates out.
Schedule run_online(const Instance& instance, Cost G, OnlinePolicy& policy,
                    Trace* trace = nullptr, Budget* budget = nullptr);

/// Convenience: the online objective value achieved by `policy`.
Cost online_objective(const Instance& instance, Cost G, OnlinePolicy& policy);

/// Run `policy` and report the uniform SolveResult (timed internally).
SolveResult run_online_result(const Instance& instance, Cost G,
                              OnlinePolicy& policy, Trace* trace = nullptr);

}  // namespace calib

# Empty dependencies file for calibsched_offline.
# This may be replaced when dependencies are built.

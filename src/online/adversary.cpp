#include "online/adversary.hpp"

#include "util/check.hpp"

namespace calib {

AdversaryOutcome run_lower_bound_adversary(OnlinePolicy& policy, Cost G,
                                           Time T) {
  CALIB_CHECK(T >= 2);
  OnlineDriver driver(T, /*machines=*/1, G, policy);
  driver.add_job(/*weight=*/1);
  driver.step();  // the policy's time-0 decision

  AdversaryOutcome outcome;
  outcome.calibrated_at_zero = driver.calendar().count() > 0;
  if (outcome.calibrated_at_zero) {
    // Branch 1: next job lands at T, one step after the interval ends.
    while (driver.now() < T) driver.step();
    driver.add_job(/*weight=*/1);
    driver.drain();
    // OPT: calibrate once at time 1; flows 2 and 1.
    outcome.lemma_opt_cost = G + 3;
  } else {
    // Branch 2: a job per step until T-1 keeps the pressure on.
    while (driver.now() <= T - 1) {
      driver.add_job(/*weight=*/1);
      driver.step();
    }
    driver.drain();
    // OPT: calibrate at time 0; every job runs at release, flow 1 each.
    outcome.lemma_opt_cost = T + G;
  }
  outcome.instance = driver.realized_instance();
  outcome.algorithm_cost = driver.online_cost();
  return outcome;
}

}  // namespace calib
